// Fault-injection and degraded-mode tests: schedule generation, the
// PlatformHealth mask, health-aware planning, and the rescue protocol's
// guarantees (a rescued task never misses; accounting always conserves).
#include <gtest/gtest.h>

#include <cmath>

#include "core/baseline_rm.hpp"
#include "core/exact_rm.hpp"
#include "core/heuristic_rm.hpp"
#include "core/plan_instance.hpp"
#include "exp/runner.hpp"
#include "fault/fault.hpp"
#include "predict/predictor.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace rmwp {
namespace {

/// Same hand-built world as test_simulator: CPU1/CPU2/GPU with
/// wcet {8, 12, 5} and energy {7.3, 8.4, 2.0} for type 0.
struct MiniWorld {
    Platform platform = make_motivational_platform();
    Catalog catalog = [] {
        const std::size_t n = 3;
        std::vector<std::vector<double>> cm(n, std::vector<double>(n, 1.0));
        std::vector<std::vector<double>> em(n, std::vector<double>(n, 0.5));
        for (std::size_t i = 0; i < n; ++i) cm[i][i] = em[i][i] = 0.0;
        std::vector<TaskType> types;
        types.emplace_back(0, std::vector<double>{8.0, 12.0, 5.0},
                           std::vector<double>{7.3, 8.4, 2.0}, cm, em);
        types.emplace_back(1, std::vector<double>{7.0, 8.5, 3.0},
                           std::vector<double>{6.2, 7.5, 1.5}, cm, em);
        return Catalog(std::move(types));
    }();
};

// ---- schedule generation ----

TEST(FaultGeneration, DeterministicGivenSeed) {
    const MiniWorld world;
    FaultParams params;
    params.outage_rate = 4.0;
    params.outage_duration_mean = 30.0;
    params.throttle_rate = 3.0;
    params.permanent_prob = 0.3;

    Rng rng_a(123), rng_b(123);
    const FaultSchedule a = generate_fault_schedule(world.platform, params, 2000.0, rng_a);
    const FaultSchedule b = generate_fault_schedule(world.platform, params, 2000.0, rng_b);
    ASSERT_GT(a.size(), 0u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
        EXPECT_EQ(a.events()[k].kind, b.events()[k].kind);
        EXPECT_EQ(a.events()[k].resource, b.events()[k].resource);
        EXPECT_EQ(a.events()[k].start, b.events()[k].start); // bitwise
        EXPECT_EQ(a.events()[k].end, b.events()[k].end);
        EXPECT_EQ(a.events()[k].factor, b.events()[k].factor);
    }
}

TEST(FaultGeneration, ZeroParamsMeanNoFaults) {
    const MiniWorld world;
    Rng rng(7);
    EXPECT_TRUE(generate_fault_schedule(world.platform, FaultParams{}, 1000.0, rng).empty());
}

TEST(FaultGeneration, MinOnlineIsRespectedAtEveryInstant) {
    const MiniWorld world;
    FaultParams params;
    params.outage_rate = 20.0; // aggressive: without the guard, overlaps abound
    params.outage_duration_mean = 100.0;
    params.permanent_prob = 0.8;
    params.min_online = 2;
    Rng rng(99);
    const FaultSchedule schedule = generate_fault_schedule(world.platform, params, 3000.0, rng);
    ASSERT_GT(schedule.size(), 0u);

    // The offline count is piecewise constant with breakpoints at event
    // boundaries: probing each onset instant covers every plateau.
    for (const FaultEvent& event : schedule.events()) {
        if (!event.takes_offline()) continue;
        const PlatformHealth health = schedule.health_at(world.platform, event.start);
        EXPECT_GE(health.online_physical_count(world.platform), 2u);
    }
}

// ---- the health mask ----

TEST(FaultSchedule, HealthAtAppliesOfflineAndWorstThrottle) {
    const MiniWorld world;
    const FaultSchedule schedule(std::vector<FaultEvent>{
        {FaultKind::outage, 0, 10.0, 20.0, 1.0},
        {FaultKind::throttle, 0, 5.0, 30.0, 2.0},
        {FaultKind::throttle, 0, 15.0, 25.0, 3.0},
    });

    PlatformHealth at5 = schedule.health_at(world.platform, 5.0);
    EXPECT_TRUE(at5.online(0));
    EXPECT_DOUBLE_EQ(at5.throttle(0), 2.0);

    PlatformHealth at12 = schedule.health_at(world.platform, 12.0);
    EXPECT_FALSE(at12.online(0));

    // Intervals are half-open: at t=20 the outage is over, and the two
    // overlapping throttles resolve to the harsher factor.
    PlatformHealth at20 = schedule.health_at(world.platform, 20.0);
    EXPECT_TRUE(at20.online(0));
    EXPECT_DOUBLE_EQ(at20.throttle(0), 3.0);

    PlatformHealth at30 = schedule.health_at(world.platform, 30.0);
    EXPECT_TRUE(at30.all_nominal());
    EXPECT_EQ(at30.online_physical_count(world.platform), 3u);
}

TEST(PlatformHealth, DvfsSiblingsShareOneHealthEntry) {
    const Platform platform = PlatformBuilder()
                                  .add_cpu_with_dvfs({1.0, 0.5}, "BIG")
                                  .add_cpu("LITTLE")
                                  .build();
    const ResourceId anchor = platform.resource(0).physical();

    PlatformHealth health;
    health.set_online(platform, anchor, false);
    for (const Resource& resource : platform) {
        if (resource.physical() == anchor) EXPECT_FALSE(health.online(resource.id()));
        else EXPECT_TRUE(health.online(resource.id()));
    }

    PlatformHealth throttled;
    throttled.set_throttle(platform, anchor, 2.5);
    for (const Resource& resource : platform) {
        if (resource.physical() == anchor)
            EXPECT_DOUBLE_EQ(throttled.throttle(resource.id()), 2.5);
        else EXPECT_DOUBLE_EQ(throttled.throttle(resource.id()), 1.0);
    }
}

// ---- health-aware planning ----

TEST(PlanInstanceHealth, OfflineResourcesExcludedAndThrottleInflatesCpm) {
    const MiniWorld world;

    PlatformHealth health;
    health.set_online(world.platform, 2, false);  // GPU down
    health.set_throttle(world.platform, 0, 2.0);  // CPU1 at half speed

    ActiveTask candidate;
    candidate.uid = 7;
    candidate.type = 0;
    candidate.absolute_deadline = 100.0;

    ArrivalContext context;
    context.platform = &world.platform;
    context.catalog = &world.catalog;
    context.candidate = candidate;
    context.health = &health;

    const PlanInstance instance = PlanInstance::build(context, 0);
    ASSERT_EQ(instance.tasks.size(), 1u);
    const PlanTask& task = instance.tasks[0];
    EXPECT_EQ(task.executable, (std::vector<ResourceId>{0, 1}));
    EXPECT_DOUBLE_EQ(task.cpm[0], 16.0); // 8 x factor 2
    EXPECT_DOUBLE_EQ(task.cpm[1], 12.0);
    EXPECT_FALSE(std::isfinite(task.cpm[2]));
}

// ---- the rescue protocol ----

/// GPU outage at t=2.5 while a type-0 task (wcet 5 on the GPU) is halfway
/// through.  The GPU is non-preemptable, so the in-flight progress is lost
/// with it — a rescue restarts the task from scratch on a CPU.
FaultSchedule gpu_outage_at(Time onset, Time recovery) {
    return FaultSchedule(
        std::vector<FaultEvent>{{FaultKind::outage, 2, onset, recovery, 1.0}});
}

TEST(Rescue, HeuristicRescuesDisplacedGpuTaskAndRestartsIt) {
    const MiniWorld world;
    const Trace trace({Request{0.0, 0, 100.0}});
    HeuristicRM rm;
    NullPredictor off;
    SimOptions options;
    const FaultSchedule faults = gpu_outage_at(2.5, 50.0);
    options.fault_schedule = &faults;
    const TraceResult r = simulate_trace(world.platform, world.catalog, trace, rm, off, options);

    EXPECT_EQ(r.accepted, 1u);
    EXPECT_EQ(r.completed, 1u);
    EXPECT_EQ(r.deadline_misses, 0u);
    EXPECT_EQ(r.resource_outages, 1u);
    EXPECT_EQ(r.rescue_activations, 1u);
    EXPECT_EQ(r.rescued, 1u);
    EXPECT_EQ(r.fault_aborted, 0u);
    // The restart is not a migration: the GPU's execution state died with
    // the GPU, so there is nothing to move.
    EXPECT_EQ(r.migrations, 0u);
    EXPECT_EQ(r.rescue_migrations, 0u);
    // Half the GPU energy is wasted (2.5 of 5 ms at 2 J total), then the
    // full task re-runs on CPU1 (the cheapest surviving resource, 7.3 J).
    EXPECT_NEAR(r.total_energy, 0.5 * 2.0 + 7.3, 1e-9);
    // Everything after the onset ran while the GPU was down.
    EXPECT_NEAR(r.degraded_energy, 7.3, 1e-9);
}

TEST(Rescue, BaselineAbortsWhatHeuristicRescues) {
    const MiniWorld world;
    const Trace trace({Request{0.0, 0, 100.0}});
    BaselineRM rm;
    NullPredictor off;
    SimOptions options;
    const FaultSchedule faults = gpu_outage_at(2.5, 50.0);
    options.fault_schedule = &faults;
    const TraceResult r = simulate_trace(world.platform, world.catalog, trace, rm, off, options);

    EXPECT_EQ(r.accepted, 1u);
    EXPECT_EQ(r.completed, 0u);
    EXPECT_EQ(r.fault_aborted, 1u);
    EXPECT_EQ(r.rescued, 0u);
    EXPECT_EQ(r.deadline_misses, 0u);
    // Only the wasted GPU half remains on the meter.
    EXPECT_NEAR(r.total_energy, 1.0, 1e-9);
    // accepted = completed + aborted + fault_aborted
    EXPECT_EQ(r.accepted, r.completed + r.aborted + r.fault_aborted);
}

TEST(Rescue, ThrottleDoomsPinnedTaskWhenDeadlineUnreachable) {
    const MiniWorld world;
    // Deadline 6: the GPU plan (5 ms) fits.  At t=2.5 a x4 throttle makes
    // the remaining 2.5 ms of work take 10 ms — unreachable, and the task
    // is pinned to the GPU, so the rescue must abort it.
    const Trace trace({Request{0.0, 0, 6.0}});
    HeuristicRM rm;
    NullPredictor off;
    SimOptions options;
    const FaultSchedule faults(
        std::vector<FaultEvent>{{FaultKind::throttle, 2, 2.5, 50.0, 4.0}});
    options.fault_schedule = &faults;
    const TraceResult r = simulate_trace(world.platform, world.catalog, trace, rm, off, options);

    EXPECT_EQ(r.throttle_events, 1u);
    EXPECT_EQ(r.rescue_activations, 1u);
    EXPECT_EQ(r.fault_aborted, 1u);
    EXPECT_EQ(r.completed, 0u);
    EXPECT_EQ(r.deadline_misses, 0u);
}

TEST(Rescue, MildThrottleStretchesExecutionButTaskStillMeetsDeadline) {
    const MiniWorld world;
    // x1.5 at t=2.5: the remaining 2.5 ms of GPU work takes 3.75 ms, so the
    // task completes at 6.25 — inside the 6.5 deadline, kept by the rescue.
    const Trace trace({Request{0.0, 0, 6.5}});
    HeuristicRM rm;
    NullPredictor off;
    SimOptions options;
    const FaultSchedule faults(
        std::vector<FaultEvent>{{FaultKind::throttle, 2, 2.5, 50.0, 1.5}});
    options.fault_schedule = &faults;
    const TraceResult r = simulate_trace(world.platform, world.catalog, trace, rm, off, options);

    EXPECT_EQ(r.completed, 1u);
    EXPECT_EQ(r.fault_aborted, 0u);
    EXPECT_EQ(r.deadline_misses, 0u);
    EXPECT_EQ(r.rescued, 0u); // throttled, not displaced
    // The second half of the work ran degraded: half the GPU's 2 J.
    EXPECT_NEAR(r.total_energy, 2.0, 1e-9);
    EXPECT_NEAR(r.degraded_energy, 1.0, 1e-9);
}

// ---- generated chaos: invariants across RMs ----

TEST(FaultChaos, AccountingConservesAndRescuersBeatBaseline) {
    ExperimentConfig config = ExperimentConfig::paper(DeadlineGroup::less_tight, 21);
    config.trace_count = 4;
    config.trace.length = 80;
    config.fault.outage_rate = 3.0;
    config.fault.outage_duration_mean = 50.0;
    config.fault.throttle_rate = 2.0;
    config.fault.permanent_prob = 0.2;
    config.fault.min_online = 2;
    const ExperimentRunner runner(config);

    std::size_t baseline_rescued = 0, heuristic_rescued = 0;
    std::size_t outages_seen = 0;
    for (const RmKind kind : {RmKind::baseline, RmKind::heuristic, RmKind::exact}) {
        const RunOutcome outcome = runner.run(RunSpec{kind, PredictorSpec::off()});
        for (const TraceResult& r : outcome.per_trace) {
            EXPECT_EQ(r.requests, r.accepted + r.rejected);
            EXPECT_EQ(r.accepted, r.completed + r.aborted + r.fault_aborted);
            EXPECT_EQ(r.deadline_misses, 0u);
            outages_seen += r.resource_outages;
            if (kind == RmKind::baseline) baseline_rescued += r.rescued;
            if (kind == RmKind::heuristic) heuristic_rescued += r.rescued;
        }
    }
    EXPECT_GT(outages_seen, 0u); // faults actually struck
    // The non-replanning baseline never migrates, so it can never rescue.
    EXPECT_EQ(baseline_rescued, 0u);
    EXPECT_GT(heuristic_rescued, baseline_rescued);
}

TEST(FaultChaos, RunsAreBitDeterministicGivenSeeds) {
    ExperimentConfig config = ExperimentConfig::paper(DeadlineGroup::very_tight, 5);
    config.trace_count = 3;
    config.trace.length = 60;
    config.fault.outage_rate = 4.0;
    config.fault.throttle_rate = 2.0;
    config.fault.min_online = 2;

    const ExperimentRunner runner_a(config);
    const ExperimentRunner runner_b(config);
    const RunOutcome a = runner_a.run(RunSpec{RmKind::heuristic, PredictorSpec::off()});
    const RunOutcome b = runner_b.run(RunSpec{RmKind::heuristic, PredictorSpec::off()});
    ASSERT_EQ(a.per_trace.size(), b.per_trace.size());
    for (std::size_t t = 0; t < a.per_trace.size(); ++t) {
        EXPECT_EQ(a.per_trace[t].accepted, b.per_trace[t].accepted);
        EXPECT_EQ(a.per_trace[t].rescued, b.per_trace[t].rescued);
        EXPECT_EQ(a.per_trace[t].fault_aborted, b.per_trace[t].fault_aborted);
        EXPECT_EQ(a.per_trace[t].rescue_migrations, b.per_trace[t].rescue_migrations);
        EXPECT_EQ(a.per_trace[t].total_energy, b.per_trace[t].total_energy); // bitwise
        EXPECT_EQ(a.per_trace[t].degraded_energy, b.per_trace[t].degraded_energy);
    }
}

} // namespace
} // namespace rmwp
