// Cross-validation of the literal Sec 4.2 MILP encoding against the
// branch-and-bound exact optimiser.
//
// Without prediction the two optimise over the same feasible set (EDF
// prefix sums == EDF simulation), so optimal energies must match exactly.
// With prediction the MILP's chunk placement is slightly more permissive
// than the engine's EDF realisation on non-preemptable resources, so the
// MILP optimum is a lower bound: feasible whenever B&B is, never more
// expensive.
#include <gtest/gtest.h>

#include "core/exact_rm.hpp"
#include "core/milp_rm.hpp"
#include "util/rng.hpp"
#include "workload/trace_generator.hpp"

namespace rmwp {
namespace {

struct RandomCase {
    Platform platform = make_motivational_platform();
    Catalog catalog;
    std::vector<ActiveTask> active;
    ArrivalContext context;

    static Catalog make_catalog(const Platform& platform, std::uint64_t seed) {
        CatalogParams params;
        params.type_count = 6;
        Rng catalog_rng = Rng(seed).derive(1);
        return generate_catalog(platform, params, catalog_rng);
    }

    explicit RandomCase(std::uint64_t seed) : catalog(make_catalog(platform, seed)) {
        Rng rng(seed);

        const std::size_t count = rng.index(4); // 0..3 active tasks
        for (std::size_t j = 0; j < count; ++j) {
            ActiveTask task;
            task.uid = j;
            task.type = rng.index(catalog.size());
            task.arrival = 0.0;
            task.absolute_deadline = rng.uniform(15.0, 150.0);
            const auto& executable = catalog.type(task.type).executable_resources();
            task.resource = executable[rng.index(executable.size())];
            if (rng.bernoulli(0.4)) {
                task.started = true;
                task.remaining_fraction = rng.uniform(0.3, 1.0);
                if (!platform.resource(task.resource).preemptable()) task.pinned = true;
            }
            active.push_back(task);
        }

        context.now = 2.0;
        context.platform = &platform;
        context.catalog = &catalog;
        context.active = active;
        context.candidate.uid = 50;
        context.candidate.type = rng.index(catalog.size());
        context.candidate.arrival = 2.0;
        context.candidate.absolute_deadline = 2.0 + rng.uniform(10.0, 100.0);
        if (rng.bernoulli(0.6)) {
            context.predicted = {PredictedTask{rng.index(catalog.size()),
                                               2.0 + rng.uniform(0.0, 8.0),
                                               rng.uniform(8.0, 60.0)}};
        }
    }
};

class MilpRmCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MilpRmCrossValidation, NoPredictionOptimaMatch) {
    const RandomCase random(GetParam());
    const PlanInstance instance = PlanInstance::build(random.context, false);

    const auto exact = ExactRM::optimize(instance);
    const auto milp = MilpRM::optimize(instance);

    ASSERT_EQ(exact.has_value(), milp.has_value()) << "seed " << GetParam();
    if (exact) {
        EXPECT_NEAR(exact->energy, milp->energy, 1e-5) << "seed " << GetParam();
        EXPECT_TRUE(milp->proven_optimal);
    }
}

TEST_P(MilpRmCrossValidation, WithPredictionMilpIsALowerBound) {
    const RandomCase random(GetParam());
    if (random.context.predicted.empty()) return;
    const PlanInstance instance = PlanInstance::build(random.context, true);

    const auto exact = ExactRM::optimize(instance);
    const auto milp = MilpRM::optimize(instance);

    if (exact) {
        ASSERT_TRUE(milp.has_value()) << "seed " << GetParam();
        EXPECT_LE(milp->energy, exact->energy + 1e-5) << "seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(RandomCases, MilpRmCrossValidation,
                         ::testing::Range<std::uint64_t>(100, 140));

TEST(MilpRm, DecideMatchesMotivationalExample) {
    const std::size_t n = 3;
    const std::vector<std::vector<double>> zero(n, std::vector<double>(n, 0.0));
    std::vector<TaskType> types;
    types.emplace_back(0, std::vector<double>{8.0, 12.0, 5.0},
                       std::vector<double>{7.3, 8.4, 2.0}, zero, zero);
    types.emplace_back(1, std::vector<double>{7.0, 8.5, 3.0},
                       std::vector<double>{6.2, 7.5, 1.5}, zero, zero);
    const Catalog catalog(std::move(types));
    const Platform platform = make_motivational_platform();

    ArrivalContext context;
    context.now = 0.0;
    context.platform = &platform;
    context.catalog = &catalog;
    context.candidate.uid = 0;
    context.candidate.type = 0;
    context.candidate.arrival = 0.0;
    context.candidate.absolute_deadline = 8.0;
    context.predicted = {PredictedTask{1, 1.0, 5.0}};

    MilpRM rm;
    const Decision decision = rm.decide(context);
    ASSERT_TRUE(decision.admitted);
    EXPECT_TRUE(decision.used_prediction);
    EXPECT_EQ(decision.assignments[0].resource, 0u); // CPU1, leaving the GPU free
}

TEST(MilpRm, EncodingHasExpectedStructure) {
    const RandomCase random(105);
    const PlanInstance instance = PlanInstance::build(random.context, false);
    const milp::LinearProgram lp = MilpRM::encode(instance);
    // One assignment row per task, at least one EDF row per task overall.
    EXPECT_GE(lp.constraint_count(), static_cast<int>(instance.tasks.size()));
    EXPECT_GT(lp.variable_count(), 0);
}

} // namespace
} // namespace rmwp
