// Unit tests for the util substrate: deterministic RNG, samplers, running
// statistics, error metrics, and table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <tuple>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rmwp {
namespace {

TEST(Rng, SameSeedSameSequence) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.raw(), b.raw());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(123);
    Rng b(124);
    int differences = 0;
    for (int i = 0; i < 64; ++i)
        if (a.raw() != b.raw()) ++differences;
    EXPECT_GT(differences, 60);
}

TEST(Rng, DerivedStreamsAreIndependentAndStable) {
    const Rng root(99);
    Rng child_a1 = root.derive(1);
    Rng child_a2 = root.derive(1);
    Rng child_b = root.derive(2);
    EXPECT_EQ(child_a1.raw(), child_a2.raw());
    Rng fresh_a = root.derive(1);
    EXPECT_NE(fresh_a.raw(), child_b.raw());
}

TEST(Rng, Uniform01InRange) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRespectsBounds) {
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(2.5, 9.0);
        EXPECT_GE(u, 2.5);
        EXPECT_LT(u, 9.0);
    }
}

TEST(Rng, UniformIntCoversRangeUniformly) {
    Rng rng(9);
    std::array<int, 6> histogram{};
    const int draws = 60000;
    for (int i = 0; i < draws; ++i) ++histogram[rng.uniform_int(0, 5)];
    for (const int count : histogram) {
        EXPECT_GT(count, draws / 6 - 800);
        EXPECT_LT(count, draws / 6 + 800);
    }
}

TEST(Rng, IndexExcludingNeverReturnsExcluded) {
    Rng rng(10);
    std::set<std::size_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::size_t draw = rng.index_excluding(5, 2);
        EXPECT_NE(draw, 2u);
        EXPECT_LT(draw, 5u);
        seen.insert(draw);
    }
    EXPECT_EQ(seen.size(), 4u); // all non-excluded values appear
}

TEST(Rng, GaussianMomentsMatch) {
    Rng rng(11);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i) stats.add(rng.gaussian(40.0, 9.0));
    EXPECT_NEAR(stats.mean(), 40.0, 0.15);
    EXPECT_NEAR(stats.stddev(), 9.0, 0.15);
}

TEST(Rng, GaussianAboveRespectsFloor) {
    Rng rng(12);
    for (int i = 0; i < 5000; ++i) EXPECT_GT(rng.gaussian_above(1.0, 2.0, 0.0), 0.0);
}

TEST(Rng, BernoulliFrequencyMatches) {
    Rng rng(13);
    int hits = 0;
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        if (rng.bernoulli(0.3)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(Rng, PreconditionViolationsThrow) {
    Rng rng(14);
    EXPECT_THROW(rng.uniform(2.0, 1.0), precondition_error);
    EXPECT_THROW(rng.index(0), precondition_error);
    EXPECT_THROW(rng.bernoulli(1.5), precondition_error);
    EXPECT_THROW(rng.gaussian(0.0, -1.0), precondition_error);
}

TEST(RunningStats, BasicMoments) {
    RunningStats stats;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, EmptyThrows) {
    RunningStats stats;
    EXPECT_THROW(std::ignore = stats.mean(), precondition_error);
    stats.add(1.0);
    EXPECT_THROW(std::ignore = stats.variance(), precondition_error);
}

TEST(RunningStats, MergeEqualsCombined) {
    Rng rng(15);
    RunningStats all;
    RunningStats left;
    RunningStats right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.gaussian(3.0, 2.0);
        all.add(x);
        (i % 2 == 0 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Samples, QuantilesInterpolate) {
    Samples samples;
    for (int i = 1; i <= 5; ++i) samples.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(samples.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(samples.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(samples.median(), 3.0);
    EXPECT_DOUBLE_EQ(samples.quantile(0.25), 2.0);
    EXPECT_DOUBLE_EQ(samples.quantile(0.125), 1.5);
}

TEST(Samples, CiShrinksWithSamples) {
    Rng rng(16);
    Samples small;
    Samples large;
    for (int i = 0; i < 20; ++i) small.add(rng.gaussian(0, 1));
    for (int i = 0; i < 2000; ++i) large.add(rng.gaussian(0, 1));
    EXPECT_LT(large.ci_halfwidth(), small.ci_halfwidth());
}

TEST(ErrorMetrics, RmseAndNrmse) {
    const std::vector<double> predicted{1.0, 2.0, 3.0};
    const std::vector<double> actual{1.0, 2.0, 5.0};
    EXPECT_NEAR(rmse(predicted, actual), 2.0 / std::sqrt(3.0), 1e-12);
    EXPECT_NEAR(nrmse(predicted, actual), rmse(predicted, actual) / (8.0 / 3.0), 1e-12);
    EXPECT_THROW(std::ignore = rmse(predicted, std::vector<double>{1.0}), precondition_error);
}

TEST(Table, RendersAlignedColumns) {
    Table table({"name", "value"});
    table.row().cell("alpha").cell(1.5, 1);
    table.row().cell("b").cell(22LL);
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("1.5"), std::string::npos);
    EXPECT_NE(text.find("22"), std::string::npos);
    // Header underline present.
    EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, OverfilledRowThrows) {
    Table table({"only"});
    table.row().cell("x");
    EXPECT_THROW(table.cell("y"), precondition_error);
}

TEST(FormatFixed, Precision) {
    EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(format_fixed(2.0, 0), "2");
}

} // namespace
} // namespace rmwp
