// Integration tests for the discrete-event simulator: the event kernel,
// execution/energy accounting, migration bookkeeping, the overhead-stall
// model, and cross-RM invariants on realistic workloads.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/exact_rm.hpp"
#include "core/heuristic_rm.hpp"
#include "predict/oracle.hpp"
#include "predict/predictor.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "workload/trace_generator.hpp"

namespace rmwp {
namespace {

// ---- event kernel ----

TEST(EventQueue, PopsInTimeOrder) {
    EventQueue queue;
    queue.schedule(3.0, 0, 30);
    queue.schedule(1.0, 0, 10);
    queue.schedule(2.0, 0, 20);
    EXPECT_EQ(queue.pop().payload, 10u);
    EXPECT_EQ(queue.pop().payload, 20u);
    EXPECT_EQ(queue.pop().payload, 30u);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
    EventQueue queue;
    for (std::uint64_t i = 0; i < 5; ++i) queue.schedule(7.0, 0, i);
    for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(queue.pop().payload, i);
}

TEST(EventQueue, CancellationDropsGroup) {
    EventQueue queue;
    queue.schedule(1.0, 0, 1, /*group=*/5);
    queue.schedule(2.0, 0, 2, /*group=*/6);
    queue.schedule(3.0, 0, 3, /*group=*/5);
    queue.cancel_group(5);
    EXPECT_EQ(queue.pop().payload, 2u);
    EXPECT_TRUE(queue.empty());
    EXPECT_THROW(queue.schedule(4.0, 0, 4, 5), precondition_error); // dead group
}

TEST(EventQueue, NextTimePeeks) {
    EventQueue queue;
    queue.schedule(9.0, 0, 1);
    EXPECT_DOUBLE_EQ(queue.next_time(), 9.0);
    EXPECT_EQ(queue.scheduled_count(), 1u);
}

TEST(EventQueue, EmptyPopThrows) {
    EventQueue queue;
    EXPECT_THROW(std::ignore = queue.pop(), precondition_error);
}

// ---- single-task accounting ----

struct MiniWorld {
    Platform platform = make_motivational_platform();
    Catalog catalog = [] {
        const std::size_t n = 3;
        std::vector<std::vector<double>> cm(n, std::vector<double>(n, 1.0));
        std::vector<std::vector<double>> em(n, std::vector<double>(n, 0.5));
        for (std::size_t i = 0; i < n; ++i) cm[i][i] = em[i][i] = 0.0;
        std::vector<TaskType> types;
        types.emplace_back(0, std::vector<double>{8.0, 12.0, 5.0},
                           std::vector<double>{7.3, 8.4, 2.0}, cm, em);
        types.emplace_back(1, std::vector<double>{7.0, 8.5, 3.0},
                           std::vector<double>{6.2, 7.5, 1.5}, cm, em);
        return Catalog(std::move(types));
    }();
};

TEST(Simulator, SingleTaskConsumesExactlyItsEnergy) {
    const MiniWorld world;
    const Trace trace({Request{0.0, 0, 100.0}});
    HeuristicRM rm;
    NullPredictor off;
    const TraceResult result = simulate_trace(world.platform, world.catalog, trace, rm, off);
    EXPECT_EQ(result.accepted, 1u);
    EXPECT_EQ(result.completed, 1u);
    EXPECT_EQ(result.deadline_misses, 0u);
    EXPECT_EQ(result.migrations, 0u);
    // Energy-greedy mapping: the GPU at 2 J.
    EXPECT_NEAR(result.total_energy, 2.0, 1e-9);
}

TEST(Simulator, EmptyishTraceAndEndOfTrace) {
    const MiniWorld world;
    const Trace trace({Request{0.0, 1, 50.0}});
    ExactRM rm;
    OraclePredictor oracle;
    const TraceResult result = simulate_trace(world.platform, world.catalog, trace, rm, oracle);
    EXPECT_EQ(result.requests, 1u);
    EXPECT_EQ(result.accepted, 1u);
    // No next request to predict: the plan cannot have used prediction.
    EXPECT_EQ(result.plans_with_prediction, 0u);
}

TEST(Simulator, RejectionLeavesStateUntouched) {
    const MiniWorld world;
    // Scenario (a) of Fig 1: tau_2 must be rejected; tau_1 still completes.
    const Trace trace({Request{0.0, 0, 8.0}, Request{1.0, 1, 5.0}});
    HeuristicRM rm;
    NullPredictor off;
    const TraceResult result = simulate_trace(world.platform, world.catalog, trace, rm, off);
    EXPECT_EQ(result.accepted, 1u);
    EXPECT_EQ(result.rejected, 1u);
    EXPECT_EQ(result.completed, 1u);
    EXPECT_NEAR(result.total_energy, 2.0, 1e-9);
}

TEST(Simulator, PredictionCausesReservationAndBothComplete) {
    const MiniWorld world;
    const Trace trace({Request{0.0, 0, 8.0}, Request{1.0, 1, 5.0}});
    HeuristicRM rm;
    OraclePredictor oracle;
    const TraceResult result = simulate_trace(world.platform, world.catalog, trace, rm, oracle);
    EXPECT_EQ(result.accepted, 2u);
    EXPECT_EQ(result.completed, 2u);
    EXPECT_NEAR(result.total_energy, 7.3 + 1.5, 1e-9);
    EXPECT_GE(result.plans_with_prediction, 1u);
}

TEST(Simulator, MigrationChargesEnergyAndOverhead) {
    const MiniWorld world;
    // tau_1 (type 0, d=100) starts on the GPU (cheapest).  tau_2 (type 1,
    // d=5) then needs the GPU; tau_1 is pinned there though...  so instead:
    // make tau_1 start on a CPU by occupying the GPU first with tau_0.
    // Simpler: verify migration accounting directly through a crafted
    // two-request scenario where the RM moves a started CPU task.
    //
    // t=0: tau_0 type 0 d=9 -> GPU busy [0, 5).
    //      tau_1 type 1 d=40 (arrives t=0.5) -> cheapest remaining is GPU
    //      after tau_0?  EDF would queue it; to force a CPU start and later
    //      migration we give it a deadline that allows requeueing.
    const Trace trace({Request{0.0, 0, 9.0}, Request{0.5, 1, 40.0}});
    HeuristicRM rm;
    NullPredictor off;
    const TraceResult result = simulate_trace(world.platform, world.catalog, trace, rm, off);
    // Whatever the exact choices, the invariants hold:
    EXPECT_EQ(result.accepted + result.rejected, 2u);
    EXPECT_EQ(result.deadline_misses, 0u);
    EXPECT_DOUBLE_EQ(result.migration_energy, 0.5 * static_cast<double>(result.migrations));
}

TEST(Simulator, DeterministicAcrossRuns) {
    const Platform platform = make_paper_platform();
    Rng rng(5);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, rng);
    TraceGenParams params;
    params.length = 150;
    Rng trace_rng(6);
    const Trace trace = generate_trace(catalog, params, trace_rng);

    auto run_once = [&] {
        HeuristicRM rm;
        OraclePredictor oracle;
        return simulate_trace(platform, catalog, trace, rm, oracle);
    };
    const TraceResult a = run_once();
    const TraceResult b = run_once();
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
    EXPECT_EQ(a.migrations, b.migrations);
}

TEST(Simulator, OverheadStallCausesAbortsOnlyWithOverhead) {
    const Platform platform = make_paper_platform();
    Rng rng(15);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, rng);
    TraceGenParams params;
    params.length = 250;
    params.interarrival_mean = 5.0;
    params.interarrival_stddev = 1.5;
    Rng trace_rng(16);
    const Trace trace = generate_trace(catalog, params, trace_rng);

    HeuristicRM rm;
    OraclePredictor clean;
    const TraceResult no_overhead = simulate_trace(platform, catalog, trace, rm, clean);
    EXPECT_EQ(no_overhead.aborted, 0u);

    OraclePredictor costly(0.5); // 10 % of the mean interarrival
    const TraceResult with_overhead = simulate_trace(platform, catalog, trace, rm, costly);
    EXPECT_GT(with_overhead.aborted, 0u);
    EXPECT_GE(with_overhead.loss_percent(), with_overhead.rejection_percent());
    EXPECT_EQ(with_overhead.deadline_misses, 0u); // doomed tasks abort, never miss
}

TEST(Simulator, SlackOnlyOverheadModelNeverAborts) {
    const Platform platform = make_paper_platform();
    Rng rng(17);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, rng);
    TraceGenParams params;
    params.length = 200;
    Rng trace_rng(18);
    const Trace trace = generate_trace(catalog, params, trace_rng);

    HeuristicRM rm;
    OraclePredictor costly(0.5);
    SimOptions options;
    options.overhead_stalls_platform = false;
    const TraceResult result =
        simulate_trace(platform, catalog, trace, rm, costly, options);
    EXPECT_EQ(result.aborted, 0u);
    EXPECT_EQ(result.deadline_misses, 0u);
}

// ---- cross-RM invariants on realistic workloads ----

struct InvariantCase {
    std::uint64_t seed;
    bool exact;
    bool predict;
};

class SimulatorInvariants
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool, bool>> {};

TEST_P(SimulatorInvariants, FirmGuaranteesAndConservation) {
    const auto [seed, use_exact, use_prediction] = GetParam();

    const Platform platform = make_paper_platform();
    Rng rng(seed);
    Rng catalog_rng = rng.derive(1);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, catalog_rng);
    TraceGenParams params;
    params.length = 120;
    params.group = seed % 2 == 0 ? DeadlineGroup::very_tight : DeadlineGroup::less_tight;
    Rng trace_rng = rng.derive(2);
    const Trace trace = generate_trace(catalog, params, trace_rng);

    HeuristicRM heuristic;
    ExactRM exact;
    ResourceManager& rm = use_exact ? static_cast<ResourceManager&>(exact)
                                    : static_cast<ResourceManager&>(heuristic);
    std::unique_ptr<Predictor> predictor;
    if (use_prediction) predictor = std::make_unique<OraclePredictor>();
    else predictor = std::make_unique<NullPredictor>();

    const TraceResult result =
        simulate_trace(platform, catalog, trace, rm, *predictor);

    // Firm real-time: every admitted task completed by its deadline.
    EXPECT_EQ(result.deadline_misses, 0u);
    EXPECT_EQ(result.aborted, 0u);
    EXPECT_EQ(result.accepted + result.rejected, result.requests);
    EXPECT_EQ(result.completed, result.accepted);
    EXPECT_GT(result.total_energy, 0.0);
    EXPECT_GE(result.migration_energy, 0.0);
    EXPECT_LE(result.migration_energy, result.total_energy);
    EXPECT_EQ(result.activations, result.requests);
    if (!use_prediction) {
        EXPECT_EQ(result.plans_with_prediction, 0u);
    }
    EXPECT_GT(result.reference_energy, 0.0);
    EXPECT_GE(result.rejection_percent(), 0.0);
    EXPECT_LE(result.rejection_percent(), 100.0);
}

INSTANTIATE_TEST_SUITE_P(Workloads, SimulatorInvariants,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                                            ::testing::Bool(), ::testing::Bool()));

TEST(Simulator, PredictionNeverBreaksGuarantees) {
    // Even a maliciously wrong predictor must not cause deadline misses —
    // prediction is a planning constraint, not a promise.
    struct LyingPredictor final : Predictor {
        [[nodiscard]] std::string name() const override { return "liar"; }
        void observe(const Trace&, std::size_t) override {}
        [[nodiscard]] std::optional<PredictedTask> predict_next(const Trace& trace,
                                                                std::size_t index,
                                                                Time now) override {
            if (index + 1 >= trace.size()) return std::nullopt;
            // Claim a huge task is about to arrive with a tiny deadline.
            return PredictedTask{0, now + 0.1, 1.0};
        }
    };

    const Platform platform = make_paper_platform();
    Rng rng(77);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, rng);
    TraceGenParams params;
    params.length = 150;
    Rng trace_rng(78);
    const Trace trace = generate_trace(catalog, params, trace_rng);

    HeuristicRM rm;
    LyingPredictor liar;
    const TraceResult result = simulate_trace(platform, catalog, trace, rm, liar);
    EXPECT_EQ(result.deadline_misses, 0u);
    EXPECT_EQ(result.completed, result.accepted);
}

} // namespace
} // namespace rmwp
