// Tests for the parallel experiment engine (src/exec + exp/runner fan-out):
// the TaskPool primitive, the RMWP_JOBS session default, and the determinism
// contract of DESIGN.md Sec 9 — running the same experiment at jobs=1 and
// jobs=8 must produce bit-identical TraceResults (only the host wall-clock
// fields may differ), across every RM kind, with fault injection and the
// independent auditor enabled.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/heuristic_rm.hpp"
#include "exec/task_pool.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/runner.hpp"

namespace rmwp {
namespace {

// ---- TaskPool primitive ----

TEST(TaskPool, ExecutesEveryIndexExactlyOnce) {
    TaskPool pool(4);
    constexpr std::size_t kCount = 5000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.for_each(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(TaskPool, ReusableAcrossJobs) {
    TaskPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.for_each(100, [&](std::size_t i) { sum.fetch_add(i + 1); });
        EXPECT_EQ(sum.load(), 5050u);
    }
}

TEST(TaskPool, ZeroCountIsANoOp) {
    TaskPool pool(2);
    pool.for_each(0, [&](std::size_t) { FAIL() << "must not be called"; });
}

TEST(TaskPool, PropagatesExceptionAndStaysUsable) {
    TaskPool pool(4);
    EXPECT_THROW(pool.for_each(200,
                               [&](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("boom");
                               }),
                 std::runtime_error);
    // The pool must survive a failed job: the next job runs normally.
    std::atomic<std::size_t> done{0};
    pool.for_each(64, [&](std::size_t) { done.fetch_add(1); });
    EXPECT_EQ(done.load(), 64u);
}

TEST(ParallelFor, SerialPathRunsInOrderOnCallingThread) {
    std::vector<std::size_t> order;
    const std::thread::id caller = std::this_thread::get_id();
    parallel_for(1, 10, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 10u);
    for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, MoreJobsThanIndices) {
    std::vector<std::atomic<int>> hits(3);
    parallel_for(16, 3, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

// ---- RMWP_JOBS session default ----

/// Sets an environment variable for the test's scope and restores the prior
/// state on destruction (the suite runs in one process; leaks would bleed
/// into later tests).
class ScopedEnv {
public:
    ScopedEnv(const char* name, const char* value) : name_(name) {
        // RMWP_LINT_ALLOW(R2): saves/restores RMWP_JOBS around a test, not a seed source
        const char* old = std::getenv(name);
        if (old != nullptr) previous_ = old;
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() {
        if (previous_.has_value()) ::setenv(name_, previous_->c_str(), 1);
        else ::unsetenv(name_);
    }
    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;

private:
    const char* name_;
    std::optional<std::string> previous_;
};

TEST(DefaultJobs, HonoursRmwpJobs) {
    const ScopedEnv env("RMWP_JOBS", "3");
    EXPECT_EQ(default_jobs(), 3u);
}

TEST(DefaultJobs, FallsBackToHardwareConcurrency) {
    const ScopedEnv env("RMWP_JOBS", "");
    EXPECT_GE(default_jobs(), 1u);
}

TEST(DefaultJobs, RejectsMalformedValues) {
    {
        const ScopedEnv env("RMWP_JOBS", "two");
        EXPECT_THROW(std::ignore = default_jobs(), std::runtime_error);
    }
    {
        const ScopedEnv env("RMWP_JOBS", "0");
        EXPECT_THROW(std::ignore = default_jobs(), std::runtime_error);
    }
}

// ---- determinism contract (DESIGN.md Sec 9) ----

/// Small-but-not-trivial configuration exercising every random stream:
/// catalog + trace generation, a noisy predictor, and fault injection (so
/// rescue re-planning runs too).  The auditor is on by default in SimOptions,
/// so every admission and rescue is independently re-verified in both runs.
ExperimentConfig test_config(std::uint64_t seed = 42) {
    ExperimentConfig config = ExperimentConfig::paper(DeadlineGroup::very_tight, seed);
    config.trace_count = 6;
    config.trace.length = 40;
    config.fault.outage_rate = 0.004;
    config.fault.throttle_rate = 0.004;
    config.fault.permanent_prob = 0.2;
    return config;
}

PredictorSpec noisy_predictor() {
    PredictorSpec predictor;
    predictor.kind = PredictorSpec::Kind::noisy;
    predictor.type_accuracy = 0.8;
    predictor.time_nrmse = 0.2;
    return predictor;
}

void expect_outcomes_identical(const RunOutcome& a, const RunOutcome& b) {
    ASSERT_EQ(a.per_trace.size(), b.per_trace.size());
    for (std::size_t t = 0; t < a.per_trace.size(); ++t)
        EXPECT_TRUE(equivalent_ignoring_host_time(a.per_trace[t], b.per_trace[t]))
            << "trace " << t << " differs between jobs=1 and jobs=8";
    // The aggregate is derived from per-trace results in trace order, so the
    // statistics must be bit-identical too (exact double equality intended).
    EXPECT_EQ(a.aggregate.rejection_percent.mean(), b.aggregate.rejection_percent.mean());
    EXPECT_EQ(a.aggregate.normalized_energy.mean(), b.aggregate.normalized_energy.mean());
    EXPECT_EQ(a.aggregate.migrations.mean(), b.aggregate.migrations.mean());
    EXPECT_EQ(a.aggregate.loss_percent.mean(), b.aggregate.loss_percent.mean());
    EXPECT_EQ(a.aggregate.rescued.mean(), b.aggregate.rescued.mean());
}

class ParallelDeterminism : public ::testing::TestWithParam<RmKind> {};

TEST_P(ParallelDeterminism, JobsOneAndEightAreBitIdentical) {
    const ExperimentConfig config = test_config();
    const ExperimentRunner serial(config, 1);
    const ExperimentRunner parallel(config, 8);
    ASSERT_EQ(serial.jobs(), 1u);
    ASSERT_EQ(parallel.jobs(), 8u);

    const RunSpec spec{GetParam(), noisy_predictor()};
    expect_outcomes_identical(serial.run(spec), parallel.run(spec));
}

INSTANTIATE_TEST_SUITE_P(AllRms, ParallelDeterminism,
                         ::testing::Values(RmKind::heuristic, RmKind::exact, RmKind::baseline),
                         [](const ::testing::TestParamInfo<RmKind>& param_info) {
                             return std::string(to_string(param_info.param));
                         });

TEST(ParallelDeterminism, MilpJobsOneAndEightAreBitIdentical) {
    // The literal MILP encoding is orders of magnitude slower (paper Sec
    // 4.2), so it gets a miniature grid rather than being skipped.
    ExperimentConfig config = test_config();
    config.trace_count = 2;
    config.trace.length = 8;
    const ExperimentRunner serial(config, 1);
    const ExperimentRunner parallel(config, 8);
    const RunSpec spec{RmKind::milp, PredictorSpec::off()};
    expect_outcomes_identical(serial.run(spec), parallel.run(spec));
}

TEST(ParallelDeterminism, SharedRmInstanceAcrossThreads) {
    // run_with shares one RM object across worker threads; decide()/rescue()
    // must be re-entrant and produce the serial results.
    const ExperimentConfig config = test_config(7);
    const ExperimentRunner serial(config, 1);
    const ExperimentRunner parallel(config, 8);

    HeuristicRM serial_rm;
    HeuristicRM shared_rm;
    expect_outcomes_identical(serial.run_with(serial_rm, noisy_predictor()),
                              parallel.run_with(shared_rm, noisy_predictor()));
}

TEST(ParallelDeterminism, ParallelRunnerMatchesSerialPerSpecRuns) {
    // The cell-level fan-out (one pool over the whole (spec, trace) grid)
    // must merge back to exactly what running each spec serially produces.
    const ExperimentConfig config = test_config(11);
    const ParallelRunner grid(config, 8);
    const ExperimentRunner serial(config, 1);

    const std::vector<RunSpec> specs{
        RunSpec{RmKind::heuristic, PredictorSpec::off()},
        RunSpec{RmKind::heuristic, noisy_predictor()},
        RunSpec{RmKind::exact, PredictorSpec::perfect()},
        RunSpec{RmKind::baseline, PredictorSpec::off()},
    };
    const std::vector<RunOutcome> outcomes = grid.run_all(specs);
    ASSERT_EQ(outcomes.size(), specs.size());
    for (std::size_t c = 0; c < specs.size(); ++c) {
        EXPECT_EQ(outcomes[c].spec.rm, specs[c].rm);
        expect_outcomes_identical(serial.run(specs[c]), outcomes[c]);
    }
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreStable) {
    // Two parallel runs of the same spec must agree with each other, not
    // just with the serial run (guards against any hidden shared state).
    const ExperimentConfig config = test_config(23);
    const ExperimentRunner parallel(config, 8);
    const RunSpec spec{RmKind::heuristic, noisy_predictor()};
    expect_outcomes_identical(parallel.run(spec), parallel.run(spec));
}

} // namespace
} // namespace rmwp
