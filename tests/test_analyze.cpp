// Tests for rmwp-analyze (tools/analyze, DESIGN.md §12).  Each rule R1–R5
// has a fixture with a seeded violation asserted at its exact file:line,
// a clean fixture asserts silence, a waived fixture asserts the waiver
// escape hatch (RMWP_LINT_ALLOW) is honored *and* counted, and the whole
// source tree must analyze clean — the same gate CI runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"

namespace fs = std::filesystem;
using rmwp::analyze::analyze;
using rmwp::analyze::Finding;
using rmwp::analyze::Options;
using rmwp::analyze::Report;

namespace {

std::string fixture(const std::string& relative) {
    return std::string(RMWP_ANALYZE_FIXTURES) + "/" + relative;
}

Report analyze_files(std::vector<std::string> paths) {
    Options options;
    options.paths = std::move(paths);
    return analyze(options);
}

/// The diagnostics, rendered `file:line: [R#] message`, unwaived only.
std::vector<std::string> diagnostics(const Report& report) {
    std::vector<std::string> out;
    for (const Finding& finding : report.findings)
        if (!finding.waived) out.push_back(rmwp::analyze::render(finding));
    return out;
}

bool has_diagnostic(const Report& report, const std::string& file, int line,
                    const std::string& rule) {
    const std::string needle = file + ":" + std::to_string(line) + ": [" + rule + "]";
    const std::vector<std::string> rendered = diagnostics(report);
    return std::any_of(rendered.begin(), rendered.end(),
                       [&](const std::string& d) { return d.find(needle) == 0; });
}

} // namespace

TEST(AnalyzeCanonicalPath, FindsLastAreaMarker) {
    EXPECT_EQ(rmwp::analyze::canonical_path("/root/repo/src/core/edf.cpp"), "src/core/edf.cpp");
    EXPECT_EQ(rmwp::analyze::canonical_path("tools/analyze/fixtures/src/sim/a.cpp"),
              "src/sim/a.cpp");
    EXPECT_EQ(rmwp::analyze::canonical_path("bench/bench_json.hpp"), "bench/bench_json.hpp");
    EXPECT_EQ(rmwp::analyze::canonical_path("/elsewhere/file.cpp"), "");
}

TEST(AnalyzeR1, WallClockFiresAtExactLine) {
    const std::string file = fixture("src/core/r1_clock.cpp");
    const Report report = analyze_files({file});
    ASSERT_EQ(report.unwaived(), 1u);
    EXPECT_EQ(diagnostics(report)[0],
              file + ":7: [R1] wall-clock read 'steady_clock' outside the host-time allowlist");
}

TEST(AnalyzeR2, EntropyFiresPerSourceAtExactLines) {
    const std::string file = fixture("src/sim/r2_entropy.cpp");
    const Report report = analyze_files({file});
    ASSERT_EQ(report.unwaived(), 3u);
    EXPECT_TRUE(has_diagnostic(report, file, 8, "R2"));  // random_device
    EXPECT_TRUE(has_diagnostic(report, file, 10, "R2")); // rand()
    EXPECT_TRUE(has_diagnostic(report, file, 11, "R2")); // getenv
}

TEST(AnalyzeR3, RangeForAndIteratorLoopOverHashedContainersFire) {
    const std::string file = fixture("src/sim/r3_unordered.cpp");
    const Report report = analyze_files({file});
    ASSERT_EQ(report.unwaived(), 2u);
    EXPECT_TRUE(has_diagnostic(report, file, 14, "R3")); // range-for over .work
    EXPECT_TRUE(has_diagnostic(report, file, 15, "R3")); // iterator loop over .members
}

TEST(AnalyzeR3, MemberDeclaredInHeaderIteratedInSiblingCpp) {
    const std::string hpp = fixture("src/sim/r3_member.hpp");
    const std::string cpp = fixture("src/sim/r3_member.cpp");
    // Alone, the .cpp does not know balances_ is hashed; with the header in
    // the same scan (as in CI) the cross-file pass catches the iteration.
    EXPECT_EQ(analyze_files({cpp}).unwaived(), 0u);
    const Report report = analyze_files({hpp, cpp});
    ASSERT_EQ(report.unwaived(), 1u);
    EXPECT_TRUE(has_diagnostic(report, cpp, 8, "R3"));
}

TEST(AnalyzeR4, LayeringViolationsFireOnlyForForbiddenEdges) {
    const std::string file = fixture("src/core/r4_layering.cpp");
    const Report report = analyze_files({file});
    ASSERT_EQ(report.unwaived(), 2u);
    EXPECT_TRUE(has_diagnostic(report, file, 2, "R4")); // core -> sim
    EXPECT_TRUE(has_diagnostic(report, file, 3, "R4")); // core -> serve
    // line 4 (core -> util) is a DAG edge and must stay silent.
    EXPECT_FALSE(has_diagnostic(report, file, 4, "R4"));
}

TEST(AnalyzeR5, UncontractedMutatorFiresContractedAndConstDoNot) {
    const std::string file = fixture("src/core/r5_contract.cpp");
    const Report report = analyze_files({file});
    ASSERT_EQ(report.unwaived(), 1u);
    EXPECT_TRUE(has_diagnostic(report, file, 14, "R5")); // bump: no contract
    const std::string message = diagnostics(report)[0];
    EXPECT_NE(message.find("FixtureCounter::bump"), std::string::npos);
}

TEST(AnalyzeClean, CleanFixtureProducesNoFindings) {
    const Report report = analyze_files({fixture("src/core/clean.cpp")});
    EXPECT_EQ(report.findings.size(), 0u);
    EXPECT_EQ(report.unwaived(), 0u);
}

TEST(AnalyzeWaivers, WaiversAreHonoredAndCounted) {
    const Report report = analyze_files({fixture("src/core/waived.cpp")});
    // Both clock reads are found but waived — one own-line, one trailing.
    EXPECT_EQ(report.findings.size(), 2u);
    EXPECT_EQ(report.unwaived(), 0u);
    ASSERT_EQ(report.waivers.size(), 2u);
    for (const auto& waiver : report.waivers) {
        EXPECT_TRUE(waiver.used);
        EXPECT_EQ(waiver.rules, "R1");
        EXPECT_FALSE(waiver.reason.empty());
    }
    for (const Finding& finding : report.findings) {
        EXPECT_TRUE(finding.waived);
        EXPECT_FALSE(finding.waiver_reason.empty());
    }
}

TEST(AnalyzeWaivers, StaleAndMalformedWaiversAreR0Findings) {
    const std::string file = fixture("src/core/stale_waiver.cpp");
    const Report report = analyze_files({file});
    ASSERT_EQ(report.unwaived(), 2u);
    EXPECT_TRUE(has_diagnostic(report, file, 5, "R0")); // unused waiver
    EXPECT_TRUE(has_diagnostic(report, file, 8, "R0")); // malformed waiver
}

TEST(AnalyzeAcceptance, InsertingSteadyClockIntoEdfCppFails) {
    // The acceptance probe from ISSUE 7: the real src/core/edf.cpp is clean
    // today, and a deliberately inserted steady_clock read must fail the
    // gate at exactly the inserted line.
    const std::string original = std::string(RMWP_ANALYZE_SOURCE_ROOT) + "/src/core/edf.cpp";
    EXPECT_EQ(analyze_files({original}).unwaived(), 0u);

    std::ifstream in(original);
    ASSERT_TRUE(in);
    std::stringstream buffer;
    buffer << in.rdbuf();
    int lines = 0;
    for (const char c : buffer.str())
        if (c == '\n') ++lines;

    const fs::path dir = fs::temp_directory_path() / "rmwp_analyze_probe" / "src" / "core";
    fs::create_directories(dir);
    const fs::path probe = dir / "edf.cpp";
    {
        std::ofstream out(probe);
        out << buffer.str()
            << "namespace rmwp { void lint_probe() { (void)std::chrono::steady_clock::now(); } }\n";
    }
    const Report report = analyze_files({probe.string()});
    ASSERT_EQ(report.unwaived(), 1u);
    EXPECT_TRUE(has_diagnostic(report, probe.string(), lines + 1, "R1"));
    fs::remove_all(fs::temp_directory_path() / "rmwp_analyze_probe");
}

TEST(AnalyzeAcceptance, WholeTreeIsCleanUnderTheCurrentWaiverInventory) {
    const std::string root = RMWP_ANALYZE_SOURCE_ROOT;
    const Report report =
        analyze_files({root + "/src", root + "/bench", root + "/tests", root + "/tools"});
    for (const std::string& diagnostic : diagnostics(report))
        ADD_FAILURE() << diagnostic;
    EXPECT_EQ(report.unwaived(), 0u);
    EXPECT_GT(report.files_scanned, 100u);
    // Every waiver in the inventory carries a written reason and suppresses
    // a live finding.
    EXPECT_FALSE(report.waivers.empty());
    for (const auto& waiver : report.waivers) {
        EXPECT_TRUE(waiver.used) << waiver.path << ":" << waiver.line;
        EXPECT_FALSE(waiver.reason.empty()) << waiver.path << ":" << waiver.line;
    }
}
