// Differential tests for batched admission (DESIGN.md §13): the
// decide_batch contract at every layer of the stack.
//
//   * RM level — a batch of one is bit-identical to decide(), and a
//     multi-item batch is bit-identical to the base class's sequential
//     emulation, for every manager that overrides the batch entry point
//     (and for MilpRM, which inherits it);
//   * engine level — stream_arrival_batch over coalesced same-instant
//     groups leaves the same simulation state as feeding the members
//     through stream_arrival one by one at the same wake;
//   * serve level — run_serve with batch_window = 0 (coalesce identical
//     wakes) matches the unbatched loop on a bursty synthetic stream with
//     injected faults, execution-time variation, and the online predictor.
//
// Batched runs count one activation per coalesced group, so the engine- and
// serve-level comparisons check every simulated-system field *except*
// activations (and the audit counters, which also scale per activation).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/baseline_rm.hpp"
#include "core/exact_rm.hpp"
#include "core/heuristic_rm.hpp"
#include "core/milp_rm.hpp"
#include "predict/online.hpp"
#include "serve/serve.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workload/trace_generator.hpp"

namespace rmwp {
namespace {

// ---- shared fixtures ----

/// Randomized single-arrival context on the motivational platform (the
/// test_core_rm.cpp idiom): a few active tasks in assorted states plus a
/// fresh candidate and (usually) one predicted request.
struct RandomWorld {
    Platform platform = make_motivational_platform();
    Catalog catalog;
    std::vector<ActiveTask> active;
    ArrivalContext context;

    static ActiveTask task_of(TaskUid uid, TaskTypeId type, Time arrival, Time rel_deadline) {
        ActiveTask task;
        task.uid = uid;
        task.type = type;
        task.arrival = arrival;
        task.absolute_deadline = arrival + rel_deadline;
        return task;
    }

    explicit RandomWorld(std::uint64_t seed) : catalog([&] {
        CatalogParams params;
        params.type_count = 8;
        Rng catalog_rng = Rng(seed).derive(1);
        return generate_catalog(platform, params, catalog_rng);
    }()) {
        Rng rng(seed);
        const std::size_t task_count = rng.index(5);
        for (std::size_t j = 0; j < task_count; ++j) {
            ActiveTask task = task_of(j, rng.index(catalog.size()), 0.0, 0.0);
            const TaskType& type = catalog.type(task.type);
            task.absolute_deadline = rng.uniform(10.0, 120.0);
            task.resource =
                type.executable_resources()[rng.index(type.executable_resources().size())];
            if (rng.bernoulli(0.5)) {
                task.started = true;
                task.remaining_fraction = rng.uniform(0.2, 1.0);
                if (!platform.resource(task.resource).preemptable()) task.pinned = true;
            }
            active.push_back(task);
        }
        context.now = 5.0;
        context.platform = &platform;
        context.catalog = &catalog;
        context.active = active;
        context.candidate = task_of(100, rng.index(catalog.size()), 5.0, rng.uniform(8.0, 90.0));
        if (rng.bernoulli(0.7))
            context.predicted = {PredictedTask{rng.index(catalog.size()),
                                               5.0 + rng.uniform(0.0, 10.0),
                                               rng.uniform(6.0, 60.0)}};
    }

    /// A follow-up candidate arriving at the same instant as the first.
    [[nodiscard]] BatchItem item(TaskUid uid, Rng& rng) const {
        BatchItem item;
        item.candidate = task_of(uid, rng.index(catalog.size()), 5.0, rng.uniform(8.0, 90.0));
        if (rng.bernoulli(0.6))
            item.predicted = {PredictedTask{rng.index(catalog.size()),
                                            5.0 + rng.uniform(0.0, 10.0),
                                            rng.uniform(6.0, 60.0)}};
        return item;
    }
};

void expect_same_decision(const Decision& a, const Decision& b, const char* what,
                          std::uint64_t seed, std::size_t index = 0) {
    EXPECT_EQ(a.admitted, b.admitted) << what << " seed " << seed << " item " << index;
    EXPECT_EQ(a.used_prediction, b.used_prediction)
        << what << " seed " << seed << " item " << index;
    EXPECT_EQ(static_cast<int>(a.reason), static_cast<int>(b.reason))
        << what << " seed " << seed << " item " << index;
    ASSERT_EQ(a.assignments.size(), b.assignments.size())
        << what << " seed " << seed << " item " << index;
    for (std::size_t k = 0; k < a.assignments.size(); ++k) {
        EXPECT_EQ(a.assignments[k].uid, b.assignments[k].uid) << what << " seed " << seed;
        EXPECT_EQ(a.assignments[k].resource, b.assignments[k].resource)
            << what << " seed " << seed;
    }
}

/// Every simulated-system field except the per-activation counters
/// (activations, audit_*): a coalesced group is one activation where the
/// sequential run counts one per member, but the resulting simulation state
/// must match bit-exactly.
void expect_equivalent_modulo_activations(const TraceResult& a, const TraceResult& b) {
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.deadline_misses, b.deadline_misses);
    EXPECT_EQ(a.aborted, b.aborted);
    EXPECT_EQ(a.fault_aborted, b.fault_aborted);
    EXPECT_EQ(a.total_energy, b.total_energy);
    EXPECT_EQ(a.migration_energy, b.migration_energy);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.critical_energy, b.critical_energy);
    EXPECT_EQ(a.plans_with_prediction, b.plans_with_prediction);
    EXPECT_EQ(a.resource_outages, b.resource_outages);
    EXPECT_EQ(a.throttle_events, b.throttle_events);
    EXPECT_EQ(a.rescue_activations, b.rescue_activations);
    EXPECT_EQ(a.rescued, b.rescued);
    EXPECT_EQ(a.rescue_migrations, b.rescue_migrations);
    EXPECT_EQ(a.degraded_energy, b.degraded_energy);
    EXPECT_EQ(a.reference_energy, b.reference_energy);
}

// ---- RM level ----

class BatchContract : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchContract, BatchOfOneIsBitIdenticalToDecide) {
    const RandomWorld world(GetParam());

    BatchItem only;
    only.candidate = world.context.candidate;
    only.predicted = world.context.predicted;
    BatchArrivalContext batch;
    batch.now = world.context.now;
    batch.platform = world.context.platform;
    batch.catalog = world.context.catalog;
    batch.active = world.context.active;
    batch.items = std::span<const BatchItem>(&only, 1);

    HeuristicRM heuristic;
    ExactRM exact;
    BaselineRM baseline;
    MilpRM milp;
    ResourceManager* const rms[] = {&heuristic, &exact, &baseline, &milp};
    for (ResourceManager* rm : rms) {
        const Decision single = rm->decide(world.context);
        std::vector<Decision> batched;
        rm->decide_batch(batch, batched);
        ASSERT_EQ(batched.size(), 1u) << rm->name();
        expect_same_decision(single, batched[0], rm->name().c_str(), GetParam());
    }
}

TEST_P(BatchContract, MultiItemBatchMatchesSequentialEmulation) {
    const RandomWorld world(GetParam());
    Rng rng(GetParam() ^ 0xb417c0ffee);

    std::vector<BatchItem> items;
    items.push_back({world.context.candidate, world.context.predicted});
    const std::size_t extra = 1 + rng.index(3);
    for (std::size_t m = 0; m < extra; ++m)
        items.push_back(world.item(101 + m, rng));

    BatchArrivalContext batch;
    batch.now = world.context.now;
    batch.platform = world.context.platform;
    batch.catalog = world.context.catalog;
    batch.active = world.context.active;
    batch.items = items;

    HeuristicRM heuristic;
    ExactRM exact;
    BaselineRM baseline;
    ResourceManager* const rms[] = {&heuristic, &exact, &baseline};
    for (ResourceManager* rm : rms) {
        std::vector<Decision> fast;
        rm->decide_batch(batch, fast);
        // The documented semantics: sequential decides over a working copy
        // of the active set — exactly what the base class implements.
        std::vector<Decision> reference;
        rm->ResourceManager::decide_batch(batch, reference);
        ASSERT_EQ(fast.size(), items.size()) << rm->name();
        ASSERT_EQ(reference.size(), items.size()) << rm->name();
        for (std::size_t m = 0; m < items.size(); ++m)
            expect_same_decision(reference[m], fast[m], rm->name().c_str(), GetParam(), m);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchContract, ::testing::Range<std::uint64_t>(0, 60));

// ---- engine level ----

struct StreamWorld {
    Platform platform = [] {
        PlatformBuilder builder;
        builder.add_cpu("CPU1");
        builder.add_cpu("CPU2");
        builder.add_cpu("CPU3");
        builder.add_gpu("GPU");
        return builder.build();
    }();
    Catalog catalog = [this] {
        CatalogParams params;
        params.type_count = 20;
        Rng rng(11);
        return generate_catalog(platform, params, rng);
    }();
};

TEST(EngineBatch, CoalescedGroupsMatchSequentialArrivalsAtTheSameWake) {
    StreamWorld world;
    SimOptions options;
    options.execution_seed = 21;
    options.execution_time_factor_min = 0.7;

    // Bursty arrivals: groups of up to 5 requests collapsed onto one
    // shared arrival instant (the coalescing the serve loop performs).
    SyntheticSourceParams params;
    params.seed = 9;
    SyntheticArrivalSource source(world.catalog, params);
    std::vector<std::vector<Request>> groups;
    Rng shape(123);
    for (int k = 0; k < 120; ++k) {
        const std::size_t burst = 1 + shape.index(5);
        std::vector<Request> group;
        for (std::size_t m = 0; m < burst; ++m) {
            std::optional<Request> request = source.next();
            ASSERT_TRUE(request.has_value());
            if (!group.empty()) request->arrival = group.front().arrival;
            group.push_back(*request);
        }
        groups.push_back(std::move(group));
    }

    HeuristicRM sequential_rm;
    OnlinePredictor sequential_predictor(world.catalog);
    SimEngine sequential(world.platform, world.catalog, sequential_rm, sequential_predictor,
                         nullptr, options);
    sequential.begin_stream();

    HeuristicRM batched_rm;
    OnlinePredictor batched_predictor(world.catalog);
    SimEngine batched(world.platform, world.catalog, batched_rm, batched_predictor, nullptr,
                      options);
    batched.begin_stream();

    TaskUid uid = 0;
    for (const std::vector<Request>& group : groups) {
        const Time wake = group.front().arrival;
        std::vector<StreamArrival> coalesced;
        for (const Request& request : group) {
            (void)sequential.stream_arrival(request, uid, wake);
            coalesced.push_back({request, uid});
            ++uid;
        }
        (void)batched.stream_arrival_batch(coalesced, wake);
    }

    const TraceResult a = sequential.finish_stream();
    const TraceResult b = batched.finish_stream();
    expect_equivalent_modulo_activations(a, b);
    // The sequential run activates once per request, the batched one once
    // per group — the amortisation the batch path exists for.
    EXPECT_EQ(a.activations, a.requests);
    EXPECT_EQ(b.activations, groups.size());
}

// ---- serve level ----

/// Collapses runs of `burst` consecutive synthetic requests onto the first
/// member's arrival instant, so batch_window = 0 coalesces real multi-item
/// groups (mirrors bench_admission_throughput's burst cells).
class BurstSource final : public ArrivalSource {
public:
    BurstSource(const Catalog& catalog, const SyntheticSourceParams& params, std::size_t burst)
        : inner_(catalog, params), burst_(burst) {}

    [[nodiscard]] std::optional<Request> next() override {
        std::optional<Request> request = inner_.next();
        if (!request.has_value()) return std::nullopt;
        if (in_burst_ == 0) {
            burst_arrival_ = request->arrival;
            in_burst_ = burst_;
        } else {
            request->arrival = burst_arrival_;
        }
        --in_burst_;
        return request;
    }
    [[nodiscard]] bool seekable() const noexcept override { return false; }
    [[nodiscard]] SourceCursor cursor() const noexcept override { return {}; }
    void seek(const SourceCursor&) override {
        throw std::runtime_error("BurstSource is not seekable");
    }

private:
    SyntheticArrivalSource inner_;
    std::size_t burst_;
    std::size_t in_burst_ = 0;
    Time burst_arrival_ = 0.0;
};

TEST(ServeBatch, BatchWindowZeroMatchesUnbatchedUnderFaultsAndPrediction) {
    const auto run_once = [](Time batch_window) {
        StreamWorld world;
        SyntheticSourceParams params;
        params.seed = 9;
        BurstSource source(world.catalog, params, 3);
        HeuristicRM rm;
        OnlinePredictor predictor(world.catalog);
        ServeConfig config;
        config.monitor = false;
        config.max_arrivals = 600;
        config.batch_window = batch_window;
        config.faults.outage_rate = 0.3;
        config.faults.throttle_rate = 0.2;
        config.fault_seed = 17;
        config.fault_chunk = 500.0;
        config.sim.execution_seed = 21;
        config.sim.execution_time_factor_min = 0.7;
        return run_serve(world.platform, world.catalog, rm, predictor, nullptr, source, config);
    };

    const ServeResult unbatched = run_once(-1.0);
    const ServeResult batched = run_once(0.0);

    EXPECT_EQ(batched.exit_code, 0);
    EXPECT_EQ(unbatched.arrivals, batched.arrivals);
    EXPECT_EQ(unbatched.shed, batched.shed);
    expect_equivalent_modulo_activations(unbatched.result, batched.result);
    // Three-request bursts coalesce: strictly fewer activations, same
    // simulation.  The faults above exercised the rescue path in both runs.
    EXPECT_LT(batched.result.activations, unbatched.result.activations);
    EXPECT_GT(unbatched.result.rescue_activations + unbatched.result.throttle_events, 0u);
    // The online predictor scores itself identically along both paths.
    EXPECT_GT(unbatched.predictor_predictions, 0u);
    EXPECT_EQ(unbatched.predictor_predictions, batched.predictor_predictions);
    EXPECT_EQ(unbatched.predictor_hits, batched.predictor_hits);
    EXPECT_LE(unbatched.predictor_hits, unbatched.predictor_predictions);
}

} // namespace
} // namespace rmwp
