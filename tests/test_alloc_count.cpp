// Heap-allocation budget for the admission hot path (DESIGN.md §13).
//
// The solver arenas (PlanScratch, PlanPool, the EDF buffers) make
// steady-state admission allocation-free except for the Decision's
// assignments vector — the one output that must outlive the call.  This
// test pins that budget with counting global operator new/delete
// overrides, so a future change that reintroduces per-decision allocations
// (a copied mapping, a rebuilt schedule buffer, a temporary set) fails
// loudly instead of silently costing throughput.
//
// The counters are process-global, so this binary holds only this test.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/heuristic_rm.hpp"
#include "util/rng.hpp"
#include "workload/trace_generator.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

struct AllocationCount {
    std::uint64_t begin = 0;
    void start() { begin = g_allocations.load(std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t stop() const {
        return g_allocations.load(std::memory_order_relaxed) - begin;
    }
};

} // namespace

void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace rmwp {
namespace {

ActiveTask task_of(TaskUid uid, TaskTypeId type, Time arrival, Time rel_deadline) {
    ActiveTask task;
    task.uid = uid;
    task.type = type;
    task.arrival = arrival;
    task.absolute_deadline = arrival + rel_deadline;
    return task;
}

TEST(AllocCount, SteadyStateDecideAllocatesOnlyTheDecisionOutput) {
#ifdef RMWP_AUDIT
    // The audit drift gates deliberately rebuild instances from scratch to
    // cross-check the arenas; the allocation budget is a contract of the
    // production (no-audit) configuration only.
    GTEST_SKIP() << "allocation budgets are pinned on no-audit builds";
#endif
    const Platform platform = make_motivational_platform();
    CatalogParams params;
    params.type_count = 8;
    Rng catalog_rng = Rng(3).derive(1);
    const Catalog catalog = generate_catalog(platform, params, catalog_rng);

    std::vector<ActiveTask> active;
    active.push_back(task_of(0, 0, 0.0, 60.0));
    active.push_back(task_of(1, 1, 0.0, 80.0));
    ArrivalContext context;
    context.now = 5.0;
    context.platform = &platform;
    context.catalog = &catalog;
    context.active = active;
    context.candidate = task_of(100, 2, 5.0, 50.0);
    context.predicted = {PredictedTask{3, 9.0, 40.0}};

    HeuristicRM rm;
    // Warm the thread-local arenas (PlanScratch, PlanPool, EDF buffers):
    // the first decision may size every buffer.
    (void)rm.decide(context);

    constexpr int kRounds = 200;
    AllocationCount count;
    count.start();
    std::size_t admitted = 0;
    for (int round = 0; round < kRounds; ++round) {
        const Decision decision = rm.decide(context);
        if (decision.admitted) ++admitted;
    }
    const std::uint64_t allocations = count.stop();
    EXPECT_EQ(admitted, static_cast<std::size_t>(kRounds));

    // Budget: one allocation per decision — the admitted Decision's
    // assignments vector.  Everything else (instance build, Algorithm 1's
    // matrices, schedulability probes, the returned mapping span) runs on
    // reused arenas.
    EXPECT_LE(allocations, static_cast<std::uint64_t>(kRounds))
        << "steady-state decide() regressed to " << allocations << " allocations over "
        << kRounds << " rounds";
    EXPECT_GT(allocations, 0u); // the output vector itself is real
}

TEST(AllocCount, BatchDecisionAmortisesSetupAllocations) {
#ifdef RMWP_AUDIT
    GTEST_SKIP() << "allocation budgets are pinned on no-audit builds";
#endif
    const Platform platform = make_motivational_platform();
    CatalogParams params;
    params.type_count = 8;
    Rng catalog_rng = Rng(3).derive(1);
    const Catalog catalog = generate_catalog(platform, params, catalog_rng);

    std::vector<ActiveTask> active;
    active.push_back(task_of(0, 0, 0.0, 60.0));
    std::vector<BatchItem> items;
    for (std::size_t m = 0; m < 8; ++m)
        items.push_back({task_of(100 + m, (m % 4) + 1, 5.0, 50.0 + 2.0 * static_cast<double>(m)),
                         {}});
    BatchArrivalContext batch;
    batch.now = 5.0;
    batch.platform = &platform;
    batch.catalog = &catalog;
    batch.active = active;
    batch.items = items;

    HeuristicRM rm;
    std::vector<Decision> out;
    rm.decide_batch(batch, out); // warm-up
    ASSERT_EQ(out.size(), items.size());

    constexpr int kRounds = 100;
    AllocationCount count;
    count.start();
    for (int round = 0; round < kRounds; ++round) {
        rm.decide_batch(batch, out);
        ASSERT_EQ(out.size(), items.size());
    }
    const std::uint64_t allocations = count.stop();

    // Budget per batch of 8: one assignments vector per admitted item —
    // the BatchPlanner's working set, pooled instance, and spare shells
    // live on a thread-local arena, so batch setup itself is
    // allocation-free in steady state.
    // (+8 absorbs one-off arena growth that can still trail the warm-up
    // batch; it does not scale with kRounds.)
    const std::uint64_t budget = static_cast<std::uint64_t>(kRounds) * items.size() + 8;
    EXPECT_LE(allocations, budget)
        << "decide_batch allocated " << allocations << " times over " << kRounds
        << " batches of " << items.size();
}

// ---- sharded admission (DESIGN.md §15) ----

/// Four islands over eleven physical resources (mirrors
/// tests/test_shard_admission.cpp): the partition that gives the sharded
/// solver real per-bucket work.
Platform make_islands_platform() {
    PlatformBuilder builder;
    for (int k = 0; k < 8; ++k) builder.add_cpu("CPU" + std::to_string(k));
    builder.add_gpu("GPU0");
    builder.add_gpu("GPU1");
    builder.add_cpu_with_dvfs({1.0, 0.5}, "DVFS");
    return builder.build();
}

TEST(AllocCount, ShardedSteadyStateKeepsTheOneAllocationBudget) {
#ifdef RMWP_AUDIT
    GTEST_SKIP() << "allocation budgets are pinned on no-audit builds";
#endif
    const Platform platform = make_islands_platform();
    CatalogParams params;
    params.type_count = 16;
    Rng catalog_rng = Rng(5).derive(1);
    const Catalog catalog = generate_partitioned_catalog(platform, params, 4, catalog_rng);

    std::vector<ActiveTask> active;
    active.push_back(task_of(0, 0, 0.0, 90.0));
    active.push_back(task_of(1, 1, 0.0, 110.0));
    active.push_back(task_of(2, 2, 0.0, 130.0));
    for (ActiveTask& task : active)
        task.resource = catalog.type(task.type).executable_resources().front();
    ArrivalContext context;
    context.now = 5.0;
    context.platform = &platform;
    context.catalog = &catalog;
    context.active = active;
    context.candidate = task_of(100, 3, 5.0, 80.0);
    context.predicted = {PredictedTask{4, 9.0, 60.0}};

    for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}}) {
        HeuristicRM rm;
        rm.set_shard_config({4, jobs});
        // Warm-up sizes the partition, the per-bucket sub-instances, every
        // worker thread's solver arenas, and (jobs > 1) the probe pool's
        // threads — all persistent thread-local state.
        (void)rm.decide(context);

        constexpr int kRounds = 200;
        AllocationCount count;
        count.start();
        std::size_t admitted = 0;
        for (int round = 0; round < kRounds; ++round) {
            const Decision decision = rm.decide(context);
            if (decision.admitted) ++admitted;
        }
        const std::uint64_t allocations = count.stop();
        EXPECT_EQ(admitted, static_cast<std::size_t>(kRounds)) << "jobs " << jobs;

        // Same budget as the sequential path: one allocation per decision —
        // the Decision's assignments vector.  Partition rebuilds, bucket
        // sub-instances, worker mappings, and the fork-join dispatch all
        // reuse pooled capacity (the std::function thunk capturing `this`
        // stays in its small-buffer storage).
        EXPECT_LE(allocations, static_cast<std::uint64_t>(kRounds))
            << "sharded decide() with probe_jobs=" << jobs << " regressed to " << allocations
            << " allocations over " << kRounds << " rounds";
        EXPECT_GT(allocations, 0u);
    }
}

TEST(AllocCount, ShardedBatchOfEightAcrossFourShardsStaysPinned) {
#ifdef RMWP_AUDIT
    GTEST_SKIP() << "allocation budgets are pinned on no-audit builds";
#endif
    const Platform platform = make_islands_platform();
    CatalogParams params;
    params.type_count = 16;
    Rng catalog_rng = Rng(5).derive(1);
    const Catalog catalog = generate_partitioned_catalog(platform, params, 4, catalog_rng);

    std::vector<ActiveTask> active;
    active.push_back(task_of(0, 0, 0.0, 120.0));
    active.front().resource = catalog.type(0).executable_resources().front();
    // Eight same-instant arrivals spanning all four islands (type m % 16
    // lives in island (m % 16) % 4), so the batch loop exercises every
    // bucket and the cross-item solve cache.
    std::vector<BatchItem> items;
    for (std::size_t m = 0; m < 8; ++m)
        items.push_back({task_of(100 + m, (m * 3 + 1) % 16, 5.0,
                                 90.0 + 4.0 * static_cast<double>(m)),
                         {}});
    BatchArrivalContext batch;
    batch.now = 5.0;
    batch.platform = &platform;
    batch.catalog = &catalog;
    batch.active = active;
    batch.items = items;

    HeuristicRM rm;
    rm.set_shard_config({4, 2});
    std::vector<Decision> out;
    rm.decide_batch(batch, out); // warm-up
    ASSERT_EQ(out.size(), items.size());

    constexpr int kRounds = 100;
    AllocationCount count;
    count.start();
    for (int round = 0; round < kRounds; ++round) {
        rm.decide_batch(batch, out);
        ASSERT_EQ(out.size(), items.size());
    }
    const std::uint64_t allocations = count.stop();

    // Explicit pinned budget for the 8-across-4 shape: one assignments
    // vector per admitted item plus a constant slack for arena growth that
    // can trail the warm-up batch (cache-entry mappings, tracked-uid
    // capacity).  The slack must not scale with kRounds.
    const std::uint64_t budget = static_cast<std::uint64_t>(kRounds) * items.size() + 16;
    EXPECT_LE(allocations, budget)
        << "sharded decide_batch allocated " << allocations << " times over " << kRounds
        << " batches of " << items.size();
}

} // namespace
} // namespace rmwp
