// Unit tests for the platform substrate.
#include <gtest/gtest.h>

#include <tuple>

#include "platform/platform.hpp"
#include "util/check.hpp"

namespace rmwp {
namespace {

TEST(Resource, KindsAndPreemptability) {
    const Resource cpu(0, ResourceKind::cpu, "CPU1");
    const Resource gpu(1, ResourceKind::gpu, "GPU");
    const Resource accel(2, ResourceKind::accelerator, "DSP");
    EXPECT_TRUE(cpu.preemptable());
    EXPECT_FALSE(gpu.preemptable());
    EXPECT_FALSE(accel.preemptable());
    EXPECT_EQ(cpu.id(), 0u);
    EXPECT_EQ(gpu.name(), "GPU");
}

TEST(Resource, ToStringCoversKinds) {
    EXPECT_STREQ(to_string(ResourceKind::cpu), "cpu");
    EXPECT_STREQ(to_string(ResourceKind::gpu), "gpu");
    EXPECT_STREQ(to_string(ResourceKind::accelerator), "accelerator");
}

TEST(Resource, EmptyNameThrows) {
    EXPECT_THROW(Resource(0, ResourceKind::cpu, ""), precondition_error);
}

TEST(Platform, PaperPlatformShape) {
    const Platform platform = make_paper_platform();
    EXPECT_EQ(platform.size(), 6u);
    EXPECT_EQ(platform.cpu_count(), 5u);
    EXPECT_EQ(platform.non_preemptable_count(), 1u);
    EXPECT_EQ(platform.resource(5).kind(), ResourceKind::gpu);
    EXPECT_EQ(platform.resource(0).name(), "CPU1");
}

TEST(Platform, MotivationalPlatformShape) {
    const Platform platform = make_motivational_platform();
    EXPECT_EQ(platform.size(), 3u);
    EXPECT_EQ(platform.cpu_count(), 2u);
    // Table 1 column order: CPU1, CPU2, GPU.
    EXPECT_EQ(platform.resource(0).name(), "CPU1");
    EXPECT_EQ(platform.resource(1).name(), "CPU2");
    EXPECT_EQ(platform.resource(2).name(), "GPU");
}

TEST(Platform, DenseIdsEnforced) {
    std::vector<Resource> wrong;
    wrong.emplace_back(1, ResourceKind::cpu, "CPU"); // id should be 0
    EXPECT_THROW(Platform{std::move(wrong)}, precondition_error);
}

TEST(Platform, EmptyThrows) {
    EXPECT_THROW(Platform{std::vector<Resource>{}}, precondition_error);
}

TEST(Platform, OutOfRangeResourceThrows) {
    const Platform platform = make_motivational_platform();
    EXPECT_THROW(std::ignore = platform.resource(3), precondition_error);
}

TEST(PlatformBuilder, AssignsDefaultNamesAndIds) {
    const Platform platform =
        PlatformBuilder{}.add_cpu().add_gpu().add_accelerator().add_cpu("named").build();
    EXPECT_EQ(platform.size(), 4u);
    EXPECT_EQ(platform.resource(0).name(), "cpu0");
    EXPECT_EQ(platform.resource(1).name(), "gpu1");
    EXPECT_EQ(platform.resource(2).name(), "accelerator2");
    EXPECT_EQ(platform.resource(3).name(), "named");
    for (ResourceId i = 0; i < platform.size(); ++i) EXPECT_EQ(platform.resource(i).id(), i);
}

TEST(PlatformBuilder, EmptyBuildThrows) {
    PlatformBuilder builder;
    EXPECT_THROW(builder.build(), precondition_error);
}

TEST(Platform, IterationVisitsAllResources) {
    const Platform platform = make_paper_platform();
    std::size_t count = 0;
    for (const Resource& r : platform) {
        EXPECT_LT(r.id(), platform.size());
        ++count;
    }
    EXPECT_EQ(count, platform.size());
}

} // namespace
} // namespace rmwp
