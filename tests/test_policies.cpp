// Tests for the policy extensions: the greedy non-replanning BaselineRM
// (E14) and the periodic-activation mode (E15).
#include <gtest/gtest.h>

#include <tuple>

#include "core/baseline_rm.hpp"
#include "core/heuristic_rm.hpp"
#include "predict/oracle.hpp"
#include "exp/runner.hpp"
#include "predict/predictor.hpp"
#include "sim/simulator.hpp"
#include "workload/trace_generator.hpp"

namespace rmwp {
namespace {

/// Two CPUs, two task types, no migration cost: crafted so that admitting
/// the second task *requires* moving the first one.
struct CraftedWorld {
    Platform platform = PlatformBuilder{}.add_cpu("CPU1").add_cpu("CPU2").build();
    Catalog catalog = [] {
        const std::size_t n = 2;
        const std::vector<std::vector<double>> zero(n, std::vector<double>(n, 0.0));
        std::vector<TaskType> types;
        // Type A: equal speed everywhere, much cheaper on CPU1.
        types.emplace_back(0, std::vector<double>{10.0, 10.0}, std::vector<double>{1.0, 5.0},
                           zero, zero);
        // Type B: only fast enough on CPU1.
        types.emplace_back(1, std::vector<double>{8.0, 30.0}, std::vector<double>{2.0, 9.0},
                           zero, zero);
        return Catalog(std::move(types));
    }();
};

TEST(BaselineRm, PlacesSingleTaskOnCheapestFeasibleResource) {
    const CraftedWorld world;
    ArrivalContext context;
    context.now = 0.0;
    context.platform = &world.platform;
    context.catalog = &world.catalog;
    context.candidate.uid = 0;
    context.candidate.type = 0;
    context.candidate.absolute_deadline = 100.0;

    BaselineRM rm;
    const Decision decision = rm.decide(context);
    ASSERT_TRUE(decision.admitted);
    EXPECT_EQ(decision.assignments[0].resource, 0u); // CPU1: 1 J vs 5 J
}

TEST(BaselineRm, CannotSaveTaskThatNeedsReplanning) {
    // tau_A runs on CPU1 since t=0 (deadline 15).  tau_B arrives at t=1 and
    // fits nowhere without moving tau_A; the baseline must reject it, the
    // paper's heuristic migrates tau_A to CPU2 and admits.
    const CraftedWorld world;
    ActiveTask running;
    running.uid = 0;
    running.type = 0;
    running.arrival = 0.0;
    running.absolute_deadline = 15.0;
    running.resource = 0;
    running.started = true;
    running.remaining_fraction = 0.9; // 1 ms executed
    const std::vector<ActiveTask> active{running};

    ArrivalContext context;
    context.now = 1.0;
    context.platform = &world.platform;
    context.catalog = &world.catalog;
    context.active = active;
    context.candidate.uid = 1;
    context.candidate.type = 1;
    context.candidate.arrival = 1.0;
    context.candidate.absolute_deadline = 11.0;

    BaselineRM baseline;
    EXPECT_FALSE(baseline.decide(context).admitted);

    HeuristicRM heuristic;
    const Decision decision = heuristic.decide(context);
    ASSERT_TRUE(decision.admitted);
    // tau_A moved off CPU1, tau_B placed on it.
    for (const TaskAssignment& assignment : decision.assignments) {
        if (assignment.uid == 0) {
            EXPECT_EQ(assignment.resource, 1u);
        }
        if (assignment.uid == 1) {
            EXPECT_EQ(assignment.resource, 0u);
        }
    }
    EXPECT_TRUE(realize_decision(context, decision).feasible);
}

TEST(BaselineRm, NeverMovesExistingTasks) {
    const Platform platform = make_paper_platform();
    Rng rng = Rng(31).derive(1);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, rng);
    TraceGenParams params;
    params.length = 200;
    Rng trace_rng = Rng(31).derive(2);
    const Trace trace = generate_trace(catalog, params, trace_rng);

    BaselineRM rm;
    NullPredictor off;
    const TraceResult result = simulate_trace(platform, catalog, trace, rm, off);
    EXPECT_EQ(result.migrations, 0u);
    EXPECT_EQ(result.deadline_misses, 0u);
    EXPECT_EQ(result.completed, result.accepted);
}

TEST(BaselineRm, WeakerThanThePaperHeuristic) {
    ExperimentConfig config = ExperimentConfig::paper(DeadlineGroup::very_tight, 17);
    config.trace_count = 10;
    config.trace.length = 300;
    const ExperimentRunner runner(config);
    const RunOutcome baseline = runner.run(RunSpec{RmKind::baseline, PredictorSpec::off()});
    const RunOutcome heuristic = runner.run(RunSpec{RmKind::heuristic, PredictorSpec::off()});
    EXPECT_GT(baseline.mean_rejection_percent(), heuristic.mean_rejection_percent());
    EXPECT_STREQ(to_string(RmKind::baseline), "baseline");
    EXPECT_EQ(make_rm(RmKind::baseline)->name(), "baseline");
}

// ---- periodic activation ----

Catalog table1_catalog() {
    const std::size_t n = 3;
    const std::vector<std::vector<double>> zero(n, std::vector<double>(n, 0.0));
    std::vector<TaskType> types;
    types.emplace_back(0, std::vector<double>{8.0, 12.0, 5.0},
                       std::vector<double>{7.3, 8.4, 2.0}, zero, zero);
    types.emplace_back(1, std::vector<double>{7.0, 8.5, 3.0},
                       std::vector<double>{6.2, 7.5, 1.5}, zero, zero);
    return Catalog(std::move(types));
}

TEST(PeriodicActivation, QueueingDelayConsumesSlack) {
    // One request at t=5 with 3.5 ms of slack over its 3 ms GPU run.
    // Per-arrival: starts at 5, done at 8 <= 8.5: accepted.  With a 4 ms
    // activation period the decision waits until t=8; 8 + 3 > 8.5: rejected.
    const Platform platform = make_motivational_platform();
    const Catalog catalog = table1_catalog();
    const Trace trace({Request{5.0, 1, 3.5}});

    HeuristicRM rm;
    NullPredictor off_a;
    const TraceResult immediate = simulate_trace(platform, catalog, trace, rm, off_a);
    EXPECT_EQ(immediate.accepted, 1u);

    SimOptions options;
    options.activation_period = 4.0;
    NullPredictor off_b;
    const TraceResult batched =
        simulate_trace(platform, catalog, trace, rm, off_b, options);
    EXPECT_EQ(batched.rejected, 1u);
    EXPECT_EQ(batched.activations, 1u);
}

TEST(PeriodicActivation, BatchesShareOneActivation) {
    // Three arrivals inside one period: one activation, all decided there.
    const Platform platform = make_motivational_platform();
    const Catalog catalog = table1_catalog();
    const Trace trace(
        {Request{1.0, 0, 100.0}, Request{2.0, 1, 100.0}, Request{3.0, 0, 100.0}});

    HeuristicRM rm;
    NullPredictor off;
    SimOptions options;
    options.activation_period = 10.0;
    const TraceResult result = simulate_trace(platform, catalog, trace, rm, off, options);
    EXPECT_EQ(result.activations, 1u);
    EXPECT_EQ(result.accepted, 3u);
    EXPECT_EQ(result.completed, 3u);
}

TEST(PeriodicActivation, InvariantsHoldOnRealisticWorkloads) {
    const Platform platform = make_paper_platform();
    Rng rng = Rng(91).derive(1);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, rng);
    TraceGenParams params;
    params.length = 250;
    Rng trace_rng = Rng(91).derive(2);
    const Trace trace = generate_trace(catalog, params, trace_rng);

    HeuristicRM rm;
    for (const double period : {3.0, 6.0, 12.0}) {
        OraclePredictor oracle;
        SimOptions options;
        options.activation_period = period;
        const TraceResult result =
            simulate_trace(platform, catalog, trace, rm, oracle, options);
        EXPECT_EQ(result.deadline_misses, 0u);
        EXPECT_EQ(result.accepted + result.rejected, result.requests);
        EXPECT_EQ(result.completed, result.accepted);
        EXPECT_LT(result.activations, result.requests);
    }
}

TEST(PeriodicActivation, BatchingCostsAcceptanceWithoutOverhead) {
    const Platform platform = make_paper_platform();
    Rng rng = Rng(92).derive(1);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, rng);
    TraceGenParams params;
    params.length = 300;
    Rng trace_rng = Rng(92).derive(2);
    const Trace trace = generate_trace(catalog, params, trace_rng);

    HeuristicRM rm;
    NullPredictor off_a;
    const TraceResult immediate = simulate_trace(platform, catalog, trace, rm, off_a);

    SimOptions options;
    options.activation_period = 12.0; // 2x the mean interarrival
    NullPredictor off_b;
    const TraceResult batched =
        simulate_trace(platform, catalog, trace, rm, off_b, options);
    EXPECT_GT(batched.rejected, immediate.rejected);
}

} // namespace
} // namespace rmwp
