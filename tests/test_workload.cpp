// Unit tests for the workload substrate: task types, catalog generation
// (Sec 5.1 statistics), traces, the VT/LT trace generator, and CSV I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <tuple>

#include "util/check.hpp"
#include "util/stats.hpp"
#include "workload/trace_generator.hpp"
#include "workload/trace_io.hpp"

namespace rmwp {
namespace {

TaskType make_simple_type(TaskTypeId id = 0) {
    const std::size_t n = 2;
    std::vector<std::vector<double>> cm(n, std::vector<double>(n, 0.0));
    std::vector<std::vector<double>> em(n, std::vector<double>(n, 0.0));
    cm[0][1] = 3.0;
    cm[1][0] = 4.0;
    em[0][1] = 1.0;
    em[1][0] = 2.0;
    return TaskType(id, {10.0, 20.0}, {5.0, 2.0}, cm, em);
}

TEST(TaskType, AccessorsAndAverages) {
    const TaskType type = make_simple_type();
    EXPECT_DOUBLE_EQ(type.wcet(0), 10.0);
    EXPECT_DOUBLE_EQ(type.energy(1), 2.0);
    EXPECT_DOUBLE_EQ(type.mean_wcet(), 15.0);
    EXPECT_DOUBLE_EQ(type.mean_energy(), 3.5);
    EXPECT_DOUBLE_EQ(type.min_wcet(), 10.0);
    EXPECT_DOUBLE_EQ(type.min_energy(), 2.0);
    EXPECT_DOUBLE_EQ(type.migration_time(0, 1), 3.0);
    EXPECT_DOUBLE_EQ(type.migration_energy(1, 0), 2.0);
    EXPECT_DOUBLE_EQ(type.migration_time(0, 0), 0.0);
    EXPECT_EQ(type.executable_resources().size(), 2u);
}

TEST(TaskType, NonExecutableResourceIsInfinite) {
    const std::size_t n = 2;
    const std::vector<std::vector<double>> zero(n, std::vector<double>(n, 0.0));
    const TaskType type(0, {10.0, kNotExecutable}, {5.0, kNotExecutable}, zero, zero);
    EXPECT_TRUE(type.executable_on(0));
    EXPECT_FALSE(type.executable_on(1));
    EXPECT_EQ(type.executable_resources(), std::vector<ResourceId>{0});
    // Averages ignore non-executable resources.
    EXPECT_DOUBLE_EQ(type.mean_wcet(), 10.0);
}

TEST(TaskType, InconsistentExecutabilityThrows) {
    const std::size_t n = 2;
    const std::vector<std::vector<double>> zero(n, std::vector<double>(n, 0.0));
    // Finite WCET but infinite energy on resource 1: inconsistent.
    EXPECT_THROW(TaskType(0, {10.0, 20.0}, {5.0, kNotExecutable}, zero, zero),
                 precondition_error);
}

TEST(TaskType, FullyNonExecutableThrows) {
    const std::size_t n = 1;
    const std::vector<std::vector<double>> zero(n, std::vector<double>(n, 0.0));
    EXPECT_THROW(TaskType(0, {kNotExecutable}, {kNotExecutable}, zero, zero),
                 precondition_error);
}

TEST(TaskType, NonzeroSelfMigrationThrows) {
    const std::size_t n = 1;
    std::vector<std::vector<double>> bad(n, std::vector<double>(n, 1.0));
    const std::vector<std::vector<double>> zero(n, std::vector<double>(n, 0.0));
    EXPECT_THROW(TaskType(0, {10.0}, {5.0}, bad, zero), precondition_error);
}

TEST(CatalogGeneration, PaperStatistics) {
    const Platform platform = make_paper_platform();
    Rng rng(42);
    CatalogParams params;
    params.type_count = 400; // more types than the paper for tighter stats
    const Catalog catalog = generate_catalog(platform, params, rng);
    ASSERT_EQ(catalog.size(), 400u);

    RunningStats cpu_wcet;
    RunningStats cpu_energy;
    RunningStats divisor;
    for (const TaskType& type : catalog) {
        double cpu_wcet_sum = 0.0;
        for (ResourceId i = 0; i < 5; ++i) {
            cpu_wcet.add(type.wcet(i));
            cpu_energy.add(type.energy(i));
            cpu_wcet_sum += type.wcet(i);
        }
        // GPU cost = CPU average / divisor with divisor in [2, 10].
        const double implied = (cpu_wcet_sum / 5.0) / type.wcet(5);
        divisor.add(implied);
        EXPECT_GE(implied, 2.0 - 1e-9);
        EXPECT_LE(implied, 10.0 + 1e-9);
        // The same divisor applies to energy.
        double cpu_energy_sum = 0.0;
        for (ResourceId i = 0; i < 5; ++i) cpu_energy_sum += type.energy(i);
        EXPECT_NEAR((cpu_energy_sum / 5.0) / type.energy(5), implied, 1e-9);
    }
    EXPECT_NEAR(cpu_wcet.mean(), 40.0, 0.5);
    EXPECT_NEAR(cpu_wcet.stddev(), 9.0, 0.5);
    EXPECT_NEAR(cpu_energy.mean(), 15.0, 0.2);
    EXPECT_NEAR(cpu_energy.stddev(), 3.0, 0.2);
    EXPECT_NEAR(divisor.mean(), 6.0, 0.3); // uniform(2, 10) has mean 6
}

TEST(CatalogGeneration, MigrationOverheadFractions) {
    const Platform platform = make_paper_platform();
    Rng rng(7);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, rng);
    for (const TaskType& type : catalog) {
        const double time_frac = type.migration_time(0, 1) / type.mean_wcet();
        const double energy_frac = type.migration_energy(0, 1) / type.mean_energy();
        EXPECT_GE(time_frac, 0.1 - 1e-9);
        EXPECT_LE(time_frac, 0.2 + 1e-9);
        EXPECT_GE(energy_frac, 0.1 - 1e-9);
        EXPECT_LE(energy_frac, 0.2 + 1e-9);
        // Overhead is symmetric across pairs by construction.
        EXPECT_DOUBLE_EQ(type.migration_time(0, 1), type.migration_time(4, 2));
    }
}

TEST(CatalogGeneration, GpuIncompatibleFraction) {
    const Platform platform = make_paper_platform();
    Rng rng(13);
    CatalogParams params;
    params.type_count = 500;
    params.gpu_incompatible_fraction = 0.3;
    const Catalog catalog = generate_catalog(platform, params, rng);
    std::size_t incompatible = 0;
    for (const TaskType& type : catalog)
        if (!type.executable_on(5)) ++incompatible;
    EXPECT_NEAR(static_cast<double>(incompatible) / 500.0, 0.3, 0.06);
}

TEST(CatalogGeneration, DeterministicInSeed) {
    const Platform platform = make_paper_platform();
    Rng rng_a(5);
    Rng rng_b(5);
    const Catalog a = generate_catalog(platform, CatalogParams{}, rng_a);
    const Catalog b = generate_catalog(platform, CatalogParams{}, rng_b);
    for (std::size_t t = 0; t < a.size(); ++t)
        for (ResourceId i = 0; i < platform.size(); ++i)
            EXPECT_DOUBLE_EQ(a.type(t).wcet(i), b.type(t).wcet(i));
}

TEST(CatalogParams, ValidationRejectsNonsense) {
    CatalogParams params;
    params.type_count = 0;
    EXPECT_THROW(params.validate(), precondition_error);
    params = CatalogParams{};
    params.gpu_divisor_min = 12.0; // > max
    EXPECT_THROW(params.validate(), precondition_error);
    params = CatalogParams{};
    params.migration_fraction_min = 0.5;
    params.migration_fraction_max = 0.1;
    EXPECT_THROW(params.validate(), precondition_error);
}

TEST(Trace, OrderingAndStats) {
    const Trace trace({Request{0.0, 0, 5.0}, Request{2.0, 1, 3.0}, Request{6.0, 0, 4.0}});
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_DOUBLE_EQ(trace.mean_interarrival(), 3.0);
    EXPECT_DOUBLE_EQ(trace.horizon(), 10.0);
    EXPECT_DOUBLE_EQ(trace.request(1).absolute_deadline(), 5.0);
}

TEST(Trace, RejectsUnorderedArrivals) {
    EXPECT_THROW(Trace({Request{5.0, 0, 1.0}, Request{2.0, 0, 1.0}}), precondition_error);
}

TEST(Trace, RejectsNonPositiveDeadline) {
    EXPECT_THROW(Trace({Request{0.0, 0, 0.0}}), precondition_error);
}

TEST(TraceGenerator, GroupCoefficients) {
    TraceGenParams params;
    params.group = DeadlineGroup::very_tight;
    EXPECT_DOUBLE_EQ(params.deadline_coefficient_min(), 1.5);
    EXPECT_DOUBLE_EQ(params.deadline_coefficient_max(), 2.0);
    params.group = DeadlineGroup::less_tight;
    EXPECT_DOUBLE_EQ(params.deadline_coefficient_min(), 2.0);
    EXPECT_DOUBLE_EQ(params.deadline_coefficient_max(), 6.0);
    EXPECT_STREQ(to_string(DeadlineGroup::very_tight), "VT");
    EXPECT_STREQ(to_string(DeadlineGroup::less_tight), "LT");
}

TEST(TraceGenerator, InterarrivalStatistics) {
    const Platform platform = make_paper_platform();
    Rng rng(21);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, rng);
    TraceGenParams params;
    params.length = 5000;
    params.interarrival_mean = 6.0;
    params.interarrival_stddev = 2.0;
    Rng trace_rng(22);
    const Trace trace = generate_trace(catalog, params, trace_rng);
    ASSERT_EQ(trace.size(), 5000u);
    RunningStats gaps;
    for (std::size_t j = 1; j < trace.size(); ++j)
        gaps.add(trace.request(j).arrival - trace.request(j - 1).arrival);
    EXPECT_NEAR(gaps.mean(), 6.0, 0.15);
    EXPECT_NEAR(gaps.stddev(), 2.0, 0.15);
    EXPECT_GT(gaps.min(), 0.0);
    EXPECT_DOUBLE_EQ(trace.request(0).arrival, 0.0);
}

TEST(TraceGenerator, DeadlineIsRwcetTimesCoefficient) {
    const Platform platform = make_paper_platform();
    Rng rng(23);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, rng);
    for (const DeadlineGroup group : {DeadlineGroup::very_tight, DeadlineGroup::less_tight}) {
        TraceGenParams params;
        params.length = 500;
        params.group = group;
        Rng trace_rng(24);
        const Trace trace = generate_trace(catalog, params, trace_rng);
        for (const Request& request : trace) {
            // The deadline must equal some executable resource's WCET times a
            // coefficient within the group's range.
            const TaskType& type = catalog.type(request.type);
            bool matched = false;
            for (const ResourceId i : type.executable_resources()) {
                const double coefficient = request.relative_deadline / type.wcet(i);
                if (coefficient >= params.deadline_coefficient_min() - 1e-9 &&
                    coefficient <= params.deadline_coefficient_max() + 1e-9)
                    matched = true;
            }
            EXPECT_TRUE(matched) << "request deadline " << request.relative_deadline;
        }
    }
}

TEST(TraceGenerator, ChildStreamsIndependentOfCount) {
    const Platform platform = make_paper_platform();
    Rng rng(25);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, rng);
    TraceGenParams params;
    params.length = 50;
    const Rng root(77);
    const auto five = generate_traces(catalog, params, 5, root);
    const auto ten = generate_traces(catalog, params, 10, root);
    // The first five traces are identical regardless of the total count.
    for (std::size_t t = 0; t < 5; ++t) {
        ASSERT_EQ(five[t].size(), ten[t].size());
        for (std::size_t j = 0; j < five[t].size(); ++j) {
            EXPECT_DOUBLE_EQ(five[t].request(j).arrival, ten[t].request(j).arrival);
            EXPECT_EQ(five[t].request(j).type, ten[t].request(j).type);
        }
    }
}

TEST(TraceIo, TraceRoundTripIsExact) {
    const Platform platform = make_paper_platform();
    Rng rng(31);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, rng);
    TraceGenParams params;
    params.length = 120;
    Rng trace_rng(32);
    const Trace original = generate_trace(catalog, params, trace_rng);

    std::stringstream buffer;
    write_trace_csv(buffer, original);
    const Trace loaded = read_trace_csv(buffer);

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t j = 0; j < original.size(); ++j) {
        EXPECT_DOUBLE_EQ(loaded.request(j).arrival, original.request(j).arrival);
        EXPECT_EQ(loaded.request(j).type, original.request(j).type);
        EXPECT_DOUBLE_EQ(loaded.request(j).relative_deadline,
                         original.request(j).relative_deadline);
    }
}

TEST(TraceIo, CatalogRoundTripIsExact) {
    const Platform platform = make_paper_platform();
    Rng rng(33);
    CatalogParams params;
    params.type_count = 30;
    params.gpu_incompatible_fraction = 0.2; // exercise the "inf" encoding
    const Catalog original = generate_catalog(platform, params, rng);

    std::stringstream buffer;
    write_catalog_csv(buffer, original);
    const Catalog loaded = read_catalog_csv(buffer);

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t t = 0; t < original.size(); ++t) {
        for (ResourceId i = 0; i < platform.size(); ++i) {
            EXPECT_EQ(loaded.type(t).executable_on(i), original.type(t).executable_on(i));
            if (!original.type(t).executable_on(i)) continue;
            EXPECT_DOUBLE_EQ(loaded.type(t).wcet(i), original.type(t).wcet(i));
            EXPECT_DOUBLE_EQ(loaded.type(t).energy(i), original.type(t).energy(i));
            for (ResourceId k = 0; k < platform.size(); ++k) {
                EXPECT_DOUBLE_EQ(loaded.type(t).migration_time(i, k),
                                 original.type(t).migration_time(i, k));
            }
        }
    }
}

TEST(TraceGenerator, TwoPhaseArrivalsAreBimodal) {
    const Platform platform = make_paper_platform();
    Rng rng(41);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, rng);
    TraceGenParams params;
    params.length = 4000;
    params.arrival_model = ArrivalModel::two_phase;
    params.burst_scale = 0.4;
    params.lull_scale = 2.0;
    params.phase_switch_probability = 0.05;
    Rng trace_rng(42);
    const Trace trace = generate_trace(catalog, params, trace_rng);

    // Gaps cluster around 0.4 * mean and 2.0 * mean; almost nothing lands
    // between 1.0x and 1.3x of the base mean (the gap between regimes).
    std::size_t burst_like = 0;
    std::size_t lull_like = 0;
    std::size_t between = 0;
    for (std::size_t j = 1; j < trace.size(); ++j) {
        const double gap = trace.request(j).arrival - trace.request(j - 1).arrival;
        const double ratio = gap / params.interarrival_mean;
        if (ratio < 0.8) ++burst_like;
        else if (ratio > 1.4) ++lull_like;
        else ++between;
    }
    EXPECT_GT(burst_like, 1000u);
    EXPECT_GT(lull_like, 1000u);
    EXPECT_LT(between, (burst_like + lull_like) / 8);
}

TEST(TraceGenerator, TypeCorrelationIsLearnablePattern) {
    const Platform platform = make_paper_platform();
    Rng rng(43);
    CatalogParams params_catalog;
    params_catalog.type_count = 10;
    const Catalog catalog = generate_catalog(platform, params_catalog, rng);
    TraceGenParams params;
    params.length = 3000;
    params.type_correlation = 0.8;
    Rng trace_rng(44);
    const Trace trace = generate_trace(catalog, params, trace_rng);

    // For each type, the most frequent successor should dominate with the
    // configured probability (plus the 1/K chance of drawing it uniformly).
    std::vector<std::vector<std::size_t>> transition(10, std::vector<std::size_t>(10, 0));
    for (std::size_t j = 1; j < trace.size(); ++j)
        ++transition[trace.request(j - 1).type][trace.request(j).type];
    double dominant = 0.0;
    double total = 0.0;
    for (const auto& row : transition) {
        std::size_t row_total = 0;
        std::size_t row_max = 0;
        for (const std::size_t count : row) {
            row_total += count;
            row_max = std::max(row_max, count);
        }
        dominant += static_cast<double>(row_max);
        total += static_cast<double>(row_total);
    }
    EXPECT_GT(dominant / total, 0.75);
}

TEST(TraceGenerator, DefaultsReproducePaperModel) {
    // arrival_model gaussian + type_correlation 0 must produce exactly the
    // same trace as before the extension knobs existed (the two-phase and
    // correlation code paths must not consume random draws when disabled).
    const Platform platform = make_paper_platform();
    Rng rng(45);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, rng);
    TraceGenParams params;
    params.length = 50;
    Rng a(46);
    Rng b(46);
    const Trace first = generate_trace(catalog, params, a);
    const Trace second = generate_trace(catalog, params, b);
    for (std::size_t j = 0; j < first.size(); ++j) {
        EXPECT_DOUBLE_EQ(first.request(j).arrival, second.request(j).arrival);
        EXPECT_EQ(first.request(j).type, second.request(j).type);
    }
}

TEST(TraceGenerator, ExtensionValidation) {
    TraceGenParams params;
    params.type_correlation = 1.5;
    EXPECT_THROW(params.validate(), precondition_error);
    params = TraceGenParams{};
    params.burst_scale = 3.0; // > lull_scale
    EXPECT_THROW(params.validate(), precondition_error);
    params = TraceGenParams{};
    params.phase_switch_probability = -0.1;
    EXPECT_THROW(params.validate(), precondition_error);
}

TEST(TraceIo, RejectsWrongHeader) {
    std::stringstream buffer("bogus,header\n1,2,3\n");
    EXPECT_THROW(std::ignore = read_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsMalformedRowsWithDescriptiveErrors) {
    const auto parse = [](const std::string& body) {
        std::stringstream buffer("arrival,type,relative_deadline\n" + body);
        return read_trace_csv(buffer);
    };
    // Baseline: a well-formed body parses.
    EXPECT_EQ(parse("0,0,5\n1.5,1,4\n").size(), 2u);

    EXPECT_THROW(std::ignore = parse("0,0\n"), std::runtime_error);          // field count
    EXPECT_THROW(std::ignore = parse("abc,0,5\n"), std::runtime_error);      // unparseable
    EXPECT_THROW(std::ignore = parse("-1,0,5\n"), std::runtime_error);       // negative arrival
    EXPECT_THROW(std::ignore = parse("0,0,-5\n"), std::runtime_error);       // negative deadline
    EXPECT_THROW(std::ignore = parse("0,0,0\n"), std::runtime_error);        // zero deadline
    EXPECT_THROW(std::ignore = parse("inf,0,5\n"), std::runtime_error);      // non-finite time
    EXPECT_THROW(std::ignore = parse("5,0,5\n2,0,5\n"), std::runtime_error); // non-monotone

    // The error message names the offending line.
    try {
        std::ignore = parse("0,0,5\n-3,0,5\n");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& error) {
        EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos);
    }
}

TEST(TraceIo, ValidateTraceRejectsUnknownTypeIds) {
    const Platform platform = make_paper_platform();
    Rng rng(44);
    CatalogParams params;
    params.type_count = 10;
    const Catalog catalog = generate_catalog(platform, params, rng);

    const Trace good({Request{0.0, 9, 5.0}});
    EXPECT_NO_THROW(validate_trace(good, catalog));

    const Trace bad({Request{0.0, 10, 5.0}});
    EXPECT_THROW(validate_trace(bad, catalog), std::runtime_error);
}

} // namespace
} // namespace rmwp
