// Tests for the remaining-cost algebra of Sec 4.1 (cp/ep/cpm/epm and the
// migration rescaling rule).
#include <gtest/gtest.h>

#include "core/task_state.hpp"
#include "util/check.hpp"

namespace rmwp {
namespace {

TaskType make_type() {
    const std::size_t n = 2;
    std::vector<std::vector<double>> cm(n, std::vector<double>(n, 0.0));
    std::vector<std::vector<double>> em(n, std::vector<double>(n, 0.0));
    cm[0][1] = 2.0;
    cm[1][0] = 2.5;
    em[0][1] = 1.5;
    em[1][0] = 1.0;
    return TaskType(0, {10.0, 4.0}, {6.0, 2.0}, cm, em);
}

ActiveTask make_task(double remaining = 1.0, bool started = false, ResourceId resource = 0) {
    ActiveTask task;
    task.uid = 1;
    task.type = 0;
    task.arrival = 0.0;
    task.absolute_deadline = 100.0;
    task.resource = resource;
    task.started = started;
    task.remaining_fraction = remaining;
    return task;
}

TEST(TaskState, FreshTaskHasFullCosts) {
    const TaskType type = make_type();
    const ActiveTask task = make_task();
    EXPECT_DOUBLE_EQ(remaining_time(task, type, 0), 10.0);
    EXPECT_DOUBLE_EQ(remaining_time(task, type, 1), 4.0);
    EXPECT_DOUBLE_EQ(remaining_energy(task, type, 0), 6.0);
    EXPECT_DOUBLE_EQ(remaining_energy(task, type, 1), 2.0);
}

TEST(TaskState, MigrationRescalingRule) {
    // Paper: cp_{j,k} = c_{j,k} * (cp_{j,i} / c_{j,i}).  Half the work left
    // on resource 0 means half the work left anywhere.
    const TaskType type = make_type();
    const ActiveTask task = make_task(0.5, /*started=*/true, /*resource=*/0);
    EXPECT_DOUBLE_EQ(remaining_time(task, type, 0), 5.0);
    EXPECT_DOUBLE_EQ(remaining_time(task, type, 1), 2.0);
    EXPECT_DOUBLE_EQ(remaining_energy(task, type, 1), 1.0);
}

TEST(TaskState, MigrationOnlyWhenStartedAndMoving) {
    const TaskType type = make_type();
    EXPECT_FALSE(is_migration(make_task(1.0, false, 0), 1)); // not started: free remap
    EXPECT_FALSE(is_migration(make_task(0.5, true, 0), 0));  // staying put
    EXPECT_TRUE(is_migration(make_task(0.5, true, 0), 1));
}

TEST(TaskState, OccupiedTimeIncludesMigration) {
    const TaskType type = make_type();
    const ActiveTask started = make_task(0.5, true, 0);
    // Staying: remaining work only.
    EXPECT_DOUBLE_EQ(occupied_time(started, type, 0), 5.0);
    // Migrating 0 -> 1: rescaled work + cm_{0,1}.
    EXPECT_DOUBLE_EQ(occupied_time(started, type, 1), 2.0 + 2.0);
    // Unstarted tasks relocate for free.
    EXPECT_DOUBLE_EQ(occupied_time(make_task(), type, 1), 4.0);
}

TEST(TaskState, PendingOverheadCountsWhenStaying) {
    const TaskType type = make_type();
    ActiveTask task = make_task(0.5, true, 1);
    task.pending_overhead = 1.25; // mid-migration onto resource 1
    EXPECT_DOUBLE_EQ(occupied_time(task, type, 1), 2.0 + 1.25);
}

TEST(TaskState, AssignmentEnergyIncludesMigrationEnergy) {
    const TaskType type = make_type();
    const ActiveTask started = make_task(0.5, true, 0);
    EXPECT_DOUBLE_EQ(assignment_energy(started, type, 0), 3.0);
    EXPECT_DOUBLE_EQ(assignment_energy(started, type, 1), 1.0 + 1.5);
    EXPECT_DOUBLE_EQ(migration_energy_cost(started, type, 1), 1.5);
    EXPECT_DOUBLE_EQ(migration_energy_cost(started, type, 0), 0.0);
}

TEST(TaskState, TimeLeftAndFinished) {
    ActiveTask task = make_task();
    EXPECT_DOUBLE_EQ(task.time_left(40.0), 60.0);
    EXPECT_FALSE(task.finished());
    task.remaining_fraction = 0.0;
    EXPECT_TRUE(task.finished());
}

TEST(TaskState, TypeMismatchThrows) {
    const std::size_t n = 1;
    const std::vector<std::vector<double>> zero(n, std::vector<double>(n, 0.0));
    const TaskType other(3, {5.0}, {1.0}, zero, zero);
    const ActiveTask task = make_task(); // type id 0
    EXPECT_THROW(std::ignore = remaining_time(task, other, 0), precondition_error);
}

} // namespace
} // namespace rmwp
