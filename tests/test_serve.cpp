// Serve-mode tests (DESIGN.md §11): arrival sources, the runtime invariant
// monitor, overload shedding, graceful signal drains, and crash-safe
// checkpoint/restore.
//
// The two load-bearing equivalences:
//   * serve with decision_cost = 0 and an unbounded backlog produces the
//     same TraceResult as the batch simulator on the same arrivals;
//   * snapshot -> restore -> replay is bit-identical (modulo host-time
//     fields) to the uninterrupted run, with faults, shedding, and the
//     online predictor all active.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/heuristic_rm.hpp"
#include "predict/online.hpp"
#include "predict/predictor.hpp"
#include "serve/serve.hpp"
#include "sim/simulator.hpp"
#include "workload/catalog.hpp"
#include "workload/trace_generator.hpp"
#include "workload/trace_io.hpp"

namespace rmwp {
namespace {

struct ServeWorld {
    Platform platform = [] {
        PlatformBuilder builder;
        builder.add_cpu("CPU1");
        builder.add_cpu("CPU2");
        builder.add_cpu("CPU3");
        builder.add_gpu("GPU");
        return builder.build();
    }();
    Catalog catalog = [this] {
        CatalogParams params;
        params.type_count = 20;
        Rng rng(11);
        return generate_catalog(platform, params, rng);
    }();
};

/// RAII temp file in the test working directory.
struct TempFile {
    explicit TempFile(std::string name) : path(std::move(name)) {}
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
};

ServeConfig quiet_config() {
    ServeConfig config;
    config.monitor = false; // most tests exercise the loop, not the thread
    return config;
}

// ---- arrival sources ----

TEST(SyntheticSource, DeterministicAcrossInstances) {
    ServeWorld world;
    SyntheticSourceParams params;
    params.seed = 5;
    SyntheticArrivalSource a(world.catalog, params);
    SyntheticArrivalSource b(world.catalog, params);
    Time last_arrival = 0.0;
    for (int k = 0; k < 500; ++k) {
        const auto ra = a.next();
        const auto rb = b.next();
        ASSERT_TRUE(ra.has_value());
        ASSERT_TRUE(rb.has_value());
        EXPECT_EQ(ra->type, rb->type);
        EXPECT_EQ(ra->arrival, rb->arrival);
        EXPECT_EQ(ra->relative_deadline, rb->relative_deadline);
        EXPECT_GE(ra->arrival, last_arrival);
        last_arrival = ra->arrival;
    }
}

TEST(SyntheticSource, SeekIsRandomAccess) {
    ServeWorld world;
    SyntheticSourceParams params;
    params.seed = 5;
    SyntheticArrivalSource reference(world.catalog, params);
    for (int k = 0; k < 200; ++k) (void)reference.next();
    const SourceCursor cursor = reference.cursor();

    // A fresh source seeked to the cursor continues with identical draws —
    // no replay of the first 200 requests needed.
    SyntheticArrivalSource seeked(world.catalog, params);
    seeked.seek(cursor);
    for (int k = 0; k < 100; ++k) {
        const auto expected = reference.next();
        const auto got = seeked.next();
        ASSERT_TRUE(expected.has_value() && got.has_value());
        EXPECT_EQ(expected->type, got->type);
        EXPECT_EQ(expected->arrival, got->arrival);
        EXPECT_EQ(expected->relative_deadline, got->relative_deadline);
    }
}

TEST(SyntheticSource, CountBoundsTheStream) {
    ServeWorld world;
    SyntheticSourceParams params;
    params.count = 7;
    SyntheticArrivalSource source(world.catalog, params);
    int delivered = 0;
    while (source.next().has_value()) ++delivered;
    EXPECT_EQ(delivered, 7);
    EXPECT_FALSE(source.next().has_value());
}

TEST(CsvSources, MalformedMidStreamLinesAreSkippedWithWarnings) {
    std::istringstream csv("arrival,type,relative_deadline\n"
                           "0.0,0,40.0\n"
                           "not,a,number\n"
                           "5.0,1,35.0\n"
                           "9.0,99999,30.0\n" // unknown type is the engine's concern, parses fine
                           "12.0,2\n"         // missing field
                           "15.0,3,20.0\n");
    std::vector<std::string> warnings;
    CsvPipeSource source(csv, [&warnings](const std::string& w) { warnings.push_back(w); });
    std::vector<Request> delivered;
    while (auto request = source.next()) delivered.push_back(*request);
    EXPECT_EQ(delivered.size(), 4u);
    EXPECT_EQ(source.parse_errors(), 2u);
    ASSERT_EQ(warnings.size(), 2u);
    EXPECT_NE(warnings[0].find("line 3"), std::string::npos);
    EXPECT_NE(warnings[1].find("line 6"), std::string::npos);
}

TEST(CsvSources, FileSourceSeekReplaysWithoutDuplicateWarnings) {
    TempFile file("serve_seek_trace.csv");
    {
        std::ofstream out(file.path);
        out << "arrival,type,relative_deadline\n";
        out << "0.0,0,40.0\n";
        out << "garbage line\n";
        out << "4.0,1,35.0\n";
        out << "8.0,0,30.0\n";
    }
    std::vector<std::string> warnings;
    CsvFileSource source(file.path, [&warnings](const std::string& w) { warnings.push_back(w); });
    (void)source.next();
    (void)source.next(); // crosses the malformed line: one warning
    EXPECT_EQ(warnings.size(), 1u);
    const SourceCursor cursor = source.cursor();
    EXPECT_EQ(cursor.seq, 2u);

    source.seek(cursor);
    // The replay re-crossed the malformed line silently.
    EXPECT_EQ(warnings.size(), 1u);
    EXPECT_EQ(source.parse_errors(), 1u);
    const auto request = source.next();
    ASSERT_TRUE(request.has_value());
    EXPECT_DOUBLE_EQ(request->arrival, 8.0);

    SourceCursor past;
    past.seq = 100;
    EXPECT_THROW(source.seek(past), std::runtime_error);
}

// ---- serve == batch differential ----

TEST(Serve, MatchesBatchSimulatorOnTheSameArrivals) {
    ServeWorld world;
    TraceGenParams gen;
    gen.length = 400;
    Rng gen_rng(23);
    const Trace generated = generate_trace(world.catalog, gen, gen_rng);
    TempFile file("serve_differential_trace.csv");
    write_trace_csv_file(file.path, generated);
    // Both sides read the file back, so CSV rounding cannot split them.
    const Trace trace = read_trace_csv_file(file.path);

    // Deterministic execution times: the batch path draws actual-work
    // factors from one sequential stream, the streaming path derives one
    // per uid (for O(1) checkpoints), so the two agree exactly when the
    // draw is degenerate (factor 1.0 = run at WCET).
    SimOptions options;
    options.execution_seed = 7;
    HeuristicRM batch_rm;
    NullPredictor batch_predictor;
    const TraceResult batch =
        simulate_trace(world.platform, world.catalog, trace, batch_rm, batch_predictor, options);

    CsvFileSource source(file.path);
    HeuristicRM serve_rm;
    NullPredictor serve_predictor;
    ServeConfig config = quiet_config();
    config.sim = options;
    const ServeResult serve = run_serve(world.platform, world.catalog, serve_rm,
                                        serve_predictor, nullptr, source, config);

    EXPECT_EQ(serve.exit_code, 0);
    EXPECT_EQ(serve.arrivals, trace.size());
    EXPECT_EQ(serve.shed, 0u);
    EXPECT_TRUE(equivalent_ignoring_host_time(batch, serve.result))
        << "serve accepted=" << serve.result.accepted << " batch accepted=" << batch.accepted;
}

// ---- overload protection ----

TEST(Serve, OverloadSheddingIsDeterministicAndBounded) {
    ServeWorld world;
    const auto run_once = [&world] {
        SyntheticSourceParams params;
        params.seed = 3;
        SyntheticArrivalSource source(world.catalog, params);
        HeuristicRM rm;
        NullPredictor predictor;
        ServeConfig config = quiet_config();
        config.max_arrivals = 800;
        // Decider slower than the ~6ms mean interarrival: the backlog
        // saturates and shedding must engage.
        config.decision_cost = 9.0;
        config.max_pending = 5;
        return run_serve(world.platform, world.catalog, rm, predictor, nullptr, source, config);
    };
    const ServeResult first = run_once();
    const ServeResult second = run_once();

    EXPECT_GT(first.shed, 0u);
    EXPECT_EQ(first.shed, second.shed);
    EXPECT_TRUE(equivalent_ignoring_host_time(first.result, second.result));
    // Shed requests are full citizens of the accounting: counted as
    // requests, counted as rejected.
    EXPECT_EQ(first.result.requests, first.arrivals);
    EXPECT_GE(first.result.rejected, first.shed);
    EXPECT_EQ(first.result.accepted + first.result.rejected, first.result.requests);
}

// ---- checkpoint / restore ----

struct ServeRunParts {
    ServeWorld world;
    HeuristicRM rm;
    OnlinePredictor predictor;
    SyntheticArrivalSource source;

    explicit ServeRunParts(std::uint64_t source_seed = 9)
        : predictor(world.catalog), source(world.catalog, [source_seed] {
              SyntheticSourceParams params;
              params.seed = source_seed;
              return params;
          }()) {}
};

ServeConfig checkpoint_config() {
    ServeConfig config;
    config.monitor = false;
    config.decision_cost = 0.4;
    config.max_pending = 6;
    config.faults.outage_rate = 0.3;
    config.faults.throttle_rate = 0.2;
    config.fault_seed = 17;
    config.fault_chunk = 500.0;
    config.sim.execution_seed = 21;
    config.sim.execution_time_factor_min = 0.7;
    return config;
}

TEST(ServeCheckpoint, RestoreReplayIsBitIdenticalToUninterruptedRun) {
    TempFile checkpoint("serve_ckpt_identity.txt");

    // Reference: uninterrupted run over 1200 arrivals.
    ServeRunParts reference;
    ServeConfig ref_config = checkpoint_config();
    ref_config.max_arrivals = 1200;
    const ServeResult uninterrupted =
        run_serve(reference.world.platform, reference.world.catalog, reference.rm,
                  reference.predictor, nullptr, reference.source, ref_config);

    // "Crash" after 700 arrivals, having checkpointed at 600.
    ServeRunParts interrupted;
    ServeConfig half_config = checkpoint_config();
    half_config.max_arrivals = 700;
    half_config.checkpoint_path = checkpoint.path;
    half_config.checkpoint_every = 600;
    const ServeResult half =
        run_serve(interrupted.world.platform, interrupted.world.catalog, interrupted.rm,
                  interrupted.predictor, nullptr, interrupted.source, half_config);
    EXPECT_EQ(half.checkpoints_written, 1u);

    // A brand-new process image restores the snapshot and replays to 1200.
    ServeRunParts resumed;
    ServeConfig resume_config = checkpoint_config();
    resume_config.max_arrivals = 1200;
    resume_config.restore_path = checkpoint.path;
    const ServeResult continued =
        run_serve(resumed.world.platform, resumed.world.catalog, resumed.rm, resumed.predictor,
                  nullptr, resumed.source, resume_config);

    EXPECT_EQ(continued.exit_code, 0);
    EXPECT_EQ(continued.arrivals, uninterrupted.arrivals);
    EXPECT_EQ(continued.shed, uninterrupted.shed);
    EXPECT_TRUE(equivalent_ignoring_host_time(uninterrupted.result, continued.result))
        << "uninterrupted accepted=" << uninterrupted.result.accepted
        << " restored accepted=" << continued.result.accepted;
}

TEST(ServeCheckpoint, ConfigurationMismatchIsRejected) {
    TempFile checkpoint("serve_ckpt_mismatch.txt");

    ServeRunParts writer;
    ServeConfig write_config = checkpoint_config();
    write_config.max_arrivals = 300;
    write_config.checkpoint_path = checkpoint.path;
    write_config.checkpoint_every = 200;
    (void)run_serve(writer.world.platform, writer.world.catalog, writer.rm, writer.predictor,
                    nullptr, writer.source, write_config);

    ServeRunParts reader;
    ServeConfig read_config = checkpoint_config();
    read_config.decision_cost = 0.5; // differs from the snapshot's 0.4
    read_config.restore_path = checkpoint.path;
    EXPECT_THROW((void)run_serve(reader.world.platform, reader.world.catalog, reader.rm,
                                 reader.predictor, nullptr, reader.source, read_config),
                 std::runtime_error);
}

TEST(ServeCheckpoint, PipeFedRunsRefuseToCheckpoint) {
    ServeWorld world;
    std::istringstream csv("arrival,type,relative_deadline\n0.0,0,40.0\n");
    CsvPipeSource source(csv);
    HeuristicRM rm;
    NullPredictor predictor;
    ServeConfig config = quiet_config();
    config.checkpoint_path = "unused.txt";
    config.checkpoint_every = 10;
    EXPECT_THROW(
        (void)run_serve(world.platform, world.catalog, rm, predictor, nullptr, source, config),
        std::runtime_error);
}

TEST(OnlinePredictorCheckpoint, SaveRestoreRoundTripsTheModel) {
    ServeWorld world;
    OnlinePredictor original(world.catalog);
    Rng rng(31);
    Time arrival = 0.0;
    for (int k = 0; k < 200; ++k) {
        arrival += rng.uniform(2.0, 10.0);
        const auto type = static_cast<TaskTypeId>(rng.index(world.catalog.size()));
        original.observe_arrival(Request{arrival, type, rng.uniform(20.0, 60.0)});
    }

    std::stringstream snapshot;
    original.save(snapshot);
    OnlinePredictor restored(world.catalog);
    restored.restore(snapshot);

    const auto expected = original.predict_upcoming(arrival, 4);
    const auto got = restored.predict_upcoming(arrival, 4);
    ASSERT_EQ(expected.size(), got.size());
    for (std::size_t k = 0; k < expected.size(); ++k) {
        EXPECT_EQ(expected[k].type, got[k].type);
        EXPECT_EQ(expected[k].arrival, got[k].arrival);
        EXPECT_EQ(expected[k].relative_deadline, got[k].relative_deadline);
    }
}

// ---- invariant monitor ----

TEST(Monitor, CheckInvariantsCatchesEachViolationClass) {
    MonitorLimits limits;
    BoardSample ok;
    ok.arrivals = 100;
    ok.decided = 90;
    ok.shed = 5;
    ok.queued = 5;
    ok.completed = 80;
    EXPECT_FALSE(check_invariants(ok, ok, limits).has_value());

    BoardSample regressed = ok;
    regressed.arrivals = 99; // counter moved backwards
    const auto monotone = check_invariants(ok, regressed, limits);
    ASSERT_TRUE(monotone.has_value());
    EXPECT_EQ(monotone->invariant, "monotone_counter");

    BoardSample leaking = ok;
    leaking.decided = 200; // decided more than ever arrived
    const auto accounting = check_invariants(ok, leaking, limits);
    ASSERT_TRUE(accounting.has_value());
    EXPECT_EQ(accounting->invariant, "accounting");

    MonitorLimits strict = limits;
    strict.expect_no_misses = true;
    BoardSample missed = ok;
    missed.deadline_misses = 1;
    const auto miss = check_invariants(ok, missed, strict);
    ASSERT_TRUE(miss.has_value());
    EXPECT_EQ(miss->invariant, "deadline_guarantee");

    MonitorLimits tight_rss = limits;
    tight_rss.rss_budget_kb = 10;
    BoardSample fat = ok;
    fat.rss_kb = 20;
    const auto rss = check_invariants(ok, fat, tight_rss);
    ASSERT_TRUE(rss.has_value());
    EXPECT_EQ(rss->invariant, "rss_budget");

    MonitorLimits tight_active = limits;
    tight_active.active_budget = 3;
    BoardSample crowded = ok;
    crowded.active = 4;
    const auto active = check_invariants(ok, crowded, tight_active);
    ASSERT_TRUE(active.has_value());
    EXPECT_EQ(active->invariant, "active_budget");

    MonitorLimits tight_latency = limits;
    tight_latency.latency_p99_budget_us = 100.0;
    BoardSample slow = ok;
    slow.latency_p99_us = 5000.0;
    slow.latency_count = 50;
    const auto latency = check_invariants(ok, slow, tight_latency);
    ASSERT_TRUE(latency.has_value());
    EXPECT_EQ(latency->invariant, "latency_budget");
}

TEST(Monitor, LatencyHdrQuantiles) {
    LatencyHdr latency;
    for (int k = 0; k < 99; ++k) latency.record(10.0);
    latency.record(100000.0);
    EXPECT_EQ(latency.count(), 100u);
    // HDR buckets: answers are upper bucket bounds within ~3.1 % of the
    // truth (a large upgrade over the old within-2x log2 buckets); the
    // outlier only surfaces at q = 1.
    EXPECT_GE(latency.quantile_us(0.5), 10.0);
    EXPECT_LE(latency.quantile_us(0.5), 10.4);
    EXPECT_LE(latency.quantile_us(0.99), 10.4);
    EXPECT_GE(latency.quantile_us(1.0), 100000.0);
    EXPECT_LE(latency.quantile_us(1.0), 103200.0);
    EXPECT_NEAR(latency.sum_us(), 99 * 10.0 + 100000.0, 1.0);
    // Sub-microsecond samples stay distinguishable (nanosecond ticks).
    LatencyHdr fine;
    fine.record(0.05); // 50 ns
    EXPECT_GE(fine.quantile_us(1.0), 0.05);
    EXPECT_LE(fine.quantile_us(1.0), 0.06);
}

TEST(Serve, MonitorCatchesInjectedViolation) {
    ServeWorld world;
    SyntheticSourceParams params;
    params.seed = 13;
    SyntheticArrivalSource source(world.catalog, params);
    HeuristicRM rm;
    NullPredictor predictor;
    ServeConfig config;
    config.max_arrivals = 300;
    config.monitor = true;
    config.monitor_period_seconds = 0.01;
    config.limits.expect_no_misses = true;
    config.chaos_fake_miss_at = 50; // chaos: board lies about a miss
    const ServeResult serve =
        run_serve(world.platform, world.catalog, rm, predictor, nullptr, source, config);

    EXPECT_EQ(serve.exit_code, 3);
    EXPECT_NE(serve.violation.find("deadline_guarantee"), std::string::npos);
    // The engine itself was healthy: the fake miss lived only on the board.
    EXPECT_EQ(serve.result.deadline_misses, 0u);
    // Even after the violation the service drained gracefully.
    EXPECT_EQ(serve.result.completed, serve.result.accepted);
}

TEST(Serve, CleanRunPassesTheMonitor) {
    ServeWorld world;
    SyntheticSourceParams params;
    params.seed = 13;
    SyntheticArrivalSource source(world.catalog, params);
    HeuristicRM rm;
    NullPredictor predictor;
    ServeConfig config;
    config.max_arrivals = 300;
    config.monitor = true;
    config.monitor_period_seconds = 0.01;
    config.limits.expect_no_misses = true;
    config.limits.rss_budget_kb = 4u * 1024u * 1024u; // 4 GB: generous but finite
    const ServeResult serve =
        run_serve(world.platform, world.catalog, rm, predictor, nullptr, source, config);
    EXPECT_EQ(serve.exit_code, 0);
    EXPECT_GE(serve.monitor_checks, 1u);
    EXPECT_TRUE(serve.violation.empty());
}

// ---- signal drain ----

/// Delegating source that raises SIGTERM after delivering `stop_after`
/// requests — the in-process stand-in for an operator's kill.
class RaisingSource final : public ArrivalSource {
public:
    RaisingSource(ArrivalSource& inner, std::uint64_t stop_after)
        : inner_(inner), stop_after_(stop_after) {}

    [[nodiscard]] std::optional<Request> next() override {
        if (delivered_ == stop_after_) (void)std::raise(SIGTERM);
        auto request = inner_.next();
        if (request.has_value()) ++delivered_;
        return request;
    }
    [[nodiscard]] std::uint64_t parse_errors() const noexcept override {
        return inner_.parse_errors();
    }
    [[nodiscard]] bool seekable() const noexcept override { return false; }
    [[nodiscard]] SourceCursor cursor() const noexcept override { return {}; }
    void seek(const SourceCursor&) override { throw std::runtime_error("not seekable"); }

private:
    ArrivalSource& inner_;
    std::uint64_t stop_after_;
    std::uint64_t delivered_ = 0;
};

TEST(Serve, SigtermDrainsGracefully) {
    ServeWorld world;
    SyntheticSourceParams params;
    params.seed = 29;
    SyntheticArrivalSource synthetic(world.catalog, params);
    RaisingSource source(synthetic, 150);
    HeuristicRM rm;
    NullPredictor predictor;
    ServeConfig config = quiet_config();
    config.max_arrivals = 100000; // the signal, not this bound, ends the run

    install_serve_signal_handlers();
    serve_clear_stop();
    const ServeResult serve =
        run_serve(world.platform, world.catalog, rm, predictor, nullptr, source, config);
    serve_clear_stop();

    EXPECT_TRUE(serve.stopped_by_signal);
    EXPECT_EQ(serve.exit_code, 0);
    // The signal landed mid-stream and the service still drained: every
    // admitted task ran to completion before the loop returned.
    EXPECT_GT(serve.arrivals, 140u);
    EXPECT_LT(serve.arrivals, 1000u);
    EXPECT_EQ(serve.result.completed, serve.result.accepted);
}

} // namespace
} // namespace rmwp
