// Beyond the paper's 5 CPU + 1 GPU setup: a big.LITTLE-style platform with
// two fast/hungry cores, four slow/frugal cores, and two non-preemptable
// accelerators.  Demonstrates the PlatformBuilder, hand-tuned catalog
// parameters, and the exact-vs-heuristic gap on a different architecture.
#include <iostream>

#include "exp/runner.hpp"
#include "util/table.hpp"

namespace {

using namespace rmwp;

/// 2 big cores + 4 little cores + 2 accelerators.  The generator draws CPU
/// costs per core, so heterogeneity between big and little cores comes out
/// of the per-resource Gaussian draws; the accelerators get the paper's
/// 2-10x advantage.
ExperimentConfig make_biglittle_config() {
    ExperimentConfig config;
    config.seed = 7;
    config.cpu_count = 6;
    config.gpu_count = 2;
    config.catalog.type_count = 50;
    config.catalog.cpu_wcet_stddev = 14.0;  // wider spread: bigger big/little gap
    config.catalog.cpu_energy_stddev = 5.0;
    // A tenth of the types cannot run on the accelerators at all
    // (footnote 1's "dummy values" path).
    config.catalog.gpu_incompatible_fraction = 0.1;
    config.trace.group = DeadlineGroup::very_tight;
    config.trace.interarrival_mean = 3.5;
    config.trace.interarrival_stddev = 1.2;
    config.trace_count = 12;
    config.trace.length = 150;
    return config;
}

} // namespace

int main() {
    const ExperimentConfig config = make_biglittle_config();
    ExperimentRunner runner(config);

    std::cout << "platform:";
    for (const Resource& r : runner.platform())
        std::cout << ' ' << r.name() << (r.preemptable() ? "" : "*");
    std::cout << "   (* = non-preemptable)\n\n";

    Table table({"RM", "predictor", "rejection %", "normalized energy", "ms/decision"});
    for (const RmKind rm : {RmKind::heuristic, RmKind::exact}) {
        for (const bool predict : {false, true}) {
            RunSpec spec{rm, predict ? PredictorSpec::perfect() : PredictorSpec::off()};
            const RunOutcome outcome = runner.run(spec);
            table.row()
                .cell(to_string(rm))
                .cell(predict ? "on" : "off")
                .cell(outcome.mean_rejection_percent())
                .cell(outcome.mean_normalized_energy(), 3)
                .cell(outcome.aggregate.decision_milliseconds_per_activation.mean(), 3);
        }
    }
    table.print(std::cout);

    std::cout << "\nThe prediction benefit carries over to architectures the paper never\n"
                 "evaluated, and the heuristic stays within a few points of the optimum\n"
                 "at a fraction of the decision latency.\n";
    return 0;
}
