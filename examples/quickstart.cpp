// Quickstart: build the paper's platform, generate a workload, and run the
// prediction-aided heuristic resource manager against a prediction-free
// baseline on the same traces.
//
//   $ ./quickstart
//
// This is the five-minute tour of the public API: ExperimentConfig ->
// ExperimentRunner -> RunSpec -> aggregated results.
#include <iostream>

#include "exp/runner.hpp"
#include "util/table.hpp"

int main() {
    using namespace rmwp;

    // Sec 5.1 setup: 5 CPUs + 1 GPU, 100 task types, very tight deadlines.
    ExperimentConfig config = ExperimentConfig::paper(DeadlineGroup::very_tight);
    config.trace_count = 20;      // keep the demo snappy; the paper uses 500
    config.trace.length = 200;    // ... of length 500

    ExperimentRunner runner(config);
    std::cout << "platform: " << runner.platform().cpu_count() << " CPUs + "
              << runner.platform().size() - runner.platform().cpu_count() << " GPU\n"
              << "catalog:  " << runner.catalog().size() << " task types\n"
              << "traces:   " << runner.traces().size() << " x " << config.trace.length
              << " requests (" << to_string(config.trace.group) << " deadlines)\n\n";

    // The same traces feed both configurations, so the comparison is paired.
    RunSpec without{RmKind::heuristic, PredictorSpec::off()};
    RunSpec with{RmKind::heuristic, PredictorSpec::perfect()};

    const RunOutcome base = runner.run(without);
    const RunOutcome predicted = runner.run(with);

    Table table({"configuration", "rejection %", "normalized energy", "migrations/trace"});
    for (const RunOutcome* outcome : {&base, &predicted}) {
        table.row()
            .cell(outcome->spec.label())
            .cell(outcome->mean_rejection_percent())
            .cell(outcome->mean_normalized_energy(), 3)
            .cell(outcome->aggregate.migrations.mean(), 1);
    }
    table.print(std::cout);

    std::cout << "\nPrediction lowered rejection by "
              << format_fixed(base.mean_rejection_percent() - predicted.mean_rejection_percent(), 2)
              << " percentage points on this workload.\n";
    return 0;
}
