// How good must a predictor be to help?  A compact version of the Sec 5.4
// study: sweep task-type accuracy and arrival-time accuracy independently on
// very-tight-deadline traces and watch the rejection rate approach the
// predictor-off baseline.
#include <iostream>

#include "exp/runner.hpp"
#include "util/table.hpp"

int main() {
    using namespace rmwp;

    ExperimentConfig config = ExperimentConfig::paper(DeadlineGroup::very_tight);
    config.trace_count = 15;
    config.trace.length = 200;

    ExperimentRunner runner(config);

    const RunOutcome off = runner.run(RunSpec{RmKind::heuristic, PredictorSpec::off()});
    std::cout << "predictor off: " << format_fixed(off.mean_rejection_percent(), 2)
              << " % rejection (baseline)\n\n";

    Table type_table({"type accuracy", "rejection %", "benefit vs off (pp)"});
    for (const double accuracy : {1.0, 0.75, 0.5, 0.25}) {
        PredictorSpec spec;
        spec.kind = PredictorSpec::Kind::noisy;
        spec.type_accuracy = accuracy;
        const RunOutcome outcome = runner.run(RunSpec{RmKind::heuristic, spec});
        type_table.row()
            .cell(accuracy, 2)
            .cell(outcome.mean_rejection_percent())
            .cell(off.mean_rejection_percent() - outcome.mean_rejection_percent());
    }
    std::cout << "sweep 1: task-type accuracy (arrival time exact)\n";
    type_table.print(std::cout);

    Table time_table({"time accuracy (1-NRMSE)", "rejection %", "benefit vs off (pp)"});
    for (const double accuracy : {1.0, 0.75, 0.5, 0.25}) {
        PredictorSpec spec;
        spec.kind = PredictorSpec::Kind::noisy;
        spec.time_nrmse = 1.0 - accuracy;
        const RunOutcome outcome = runner.run(RunSpec{RmKind::heuristic, spec});
        time_table.row()
            .cell(accuracy, 2)
            .cell(outcome.mean_rejection_percent())
            .cell(off.mean_rejection_percent() - outcome.mean_rejection_percent());
    }
    std::cout << "\nsweep 2: arrival-time accuracy (type exact)\n";
    time_table.print(std::cout);

    std::cout << "\nPaper's conclusion (Sec 6): accuracy should be at least ~50% for a\n"
                 "reasonable improvement; at 25% the benefit is essentially gone.\n";
    return 0;
}
