// DVFS (dynamic voltage and frequency scaling) — the third decision type
// the paper's introduction names alongside mapping and scheduling.
//
// Each frequency level of a core is an operating point the mapper can pick:
// time scales with 1/f, energy with f^2, and all points of one core share
// its timeline.  Under loose deadlines the energy-minimising RM drops to
// slow levels and saves energy; as deadlines tighten it is forced back to
// full speed, and the two platforms converge.
#include <iostream>

#include "core/heuristic_rm.hpp"
#include "predict/predictor.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/trace_generator.hpp"

namespace {

using namespace rmwp;

Platform make_plain() {
    PlatformBuilder builder;
    for (int i = 1; i <= 4; ++i) builder.add_cpu("CPU" + std::to_string(i));
    builder.add_gpu("GPU");
    return builder.build();
}

Platform make_dvfs() {
    PlatformBuilder builder;
    for (int i = 1; i <= 4; ++i)
        builder.add_cpu_with_dvfs({1.0, 0.75, 0.5}, "CPU" + std::to_string(i));
    builder.add_gpu("GPU");
    return builder.build();
}

} // namespace

int main() {
    const Platform plain = make_plain();
    const Platform dvfs = make_dvfs();
    std::cout << "plain platform: " << plain.physical_count() << " cores, " << plain.size()
              << " operating points\n"
              << "dvfs platform:  " << dvfs.physical_count() << " cores, " << dvfs.size()
              << " operating points\n\n";

    // Identical nominal draws (same seed) so the cores are the same silicon.
    Rng rng_a = Rng(99).derive(1);
    const Catalog plain_catalog = generate_catalog(plain, CatalogParams{}, rng_a);
    Rng rng_b = Rng(99).derive(1);
    const Catalog dvfs_catalog = generate_catalog(dvfs, CatalogParams{}, rng_b);

    Table table({"deadlines", "platform", "rejection %", "energy (J)", "energy saving"});
    for (const DeadlineGroup group : {DeadlineGroup::less_tight, DeadlineGroup::very_tight}) {
        RunningStats plain_energy;
        RunningStats dvfs_energy;
        RunningStats plain_rejection;
        RunningStats dvfs_rejection;

        for (std::size_t t = 0; t < 10; ++t) {
            TraceGenParams params;
            params.length = 250;
            params.group = group;
            params.interarrival_mean = 10.0;
            params.interarrival_stddev = 3.0;
            Rng trace_rng = Rng(100 + t).derive(2);
            const Trace trace = generate_trace(plain_catalog, params, trace_rng);

            HeuristicRM rm;
            NullPredictor off_a;
            const TraceResult a = simulate_trace(plain, plain_catalog, trace, rm, off_a);
            NullPredictor off_b;
            const TraceResult b = simulate_trace(dvfs, dvfs_catalog, trace, rm, off_b);
            plain_energy.add(a.total_energy);
            dvfs_energy.add(b.total_energy);
            plain_rejection.add(a.rejection_percent());
            dvfs_rejection.add(b.rejection_percent());
        }

        const double saving = 100.0 * (1.0 - dvfs_energy.mean() / plain_energy.mean());
        table.row()
            .cell(to_string(group))
            .cell("plain")
            .cell(plain_rejection.mean())
            .cell(plain_energy.mean(), 0)
            .cell("-");
        table.row()
            .cell(to_string(group))
            .cell("dvfs")
            .cell(dvfs_rejection.mean())
            .cell(dvfs_energy.mean(), 0)
            .cell(format_fixed(saving, 1) + " %");
    }
    table.print(std::cout);

    std::cout << "\nLoose deadlines let the mapper run tasks slow and cheap; tight\n"
                 "deadlines erode the saving because full speed is needed to admit work.\n";
    return 0;
}
