// Mixed-criticality operation (Sec 2): safety-critical tasks get
// design-time reservations that the runtime manager must honour with
// absolute priority, while the adaptive, prediction-aided policy manages
// the remaining capacity.
//
// This example reserves a periodic control loop on the GPU and a monitor on
// CPU1, then measures how the adaptive workload's rejection changes with
// and without prediction — the reservations never miss, whatever happens to
// the adaptive tasks.
#include <iostream>

#include "core/heuristic_rm.hpp"
#include "core/reservation.hpp"
#include "predict/oracle.hpp"
#include "predict/predictor.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/trace_generator.hpp"

int main() {
    using namespace rmwp;

    const Platform platform = make_paper_platform();
    Rng rng(2026);
    Rng catalog_rng = rng.derive(1);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, catalog_rng);

    // 40 % of the GPU and 25 % of CPU1 are spoken for at design time.
    const ReservationTable reservations({
        CriticalTask{"engine-control", /*resource=*/5, /*period=*/20.0, /*offset=*/0.0,
                     /*duration=*/8.0, /*energy=*/3.0},
        CriticalTask{"health-monitor", /*resource=*/0, /*period=*/40.0, /*offset=*/10.0,
                     /*duration=*/10.0, /*energy=*/2.0},
    });

    std::cout << "critical reservations:\n";
    for (const CriticalTask& task : reservations.tasks()) {
        std::cout << "  " << task.name << " on " << platform.resource(task.resource).name()
                  << ": " << task.duration << " ms every " << task.period << " ms ("
                  << format_fixed(100.0 * task.utilization(), 0) << " % of the resource)\n";
    }
    std::cout << '\n';

    TraceGenParams params;
    params.length = 300;
    const std::size_t trace_count = 12;

    Table table({"reservations", "predictor", "adaptive rejection %", "critical energy (J)"});
    for (const bool reserved : {false, true}) {
        for (const bool predict : {false, true}) {
            RunningStats rejection;
            RunningStats critical_energy;
            for (std::size_t t = 0; t < trace_count; ++t) {
                Rng trace_rng = rng.derive(100 + t);
                const Trace trace = generate_trace(catalog, params, trace_rng);
                HeuristicRM rm;
                TraceResult result;
                if (predict) {
                    OraclePredictor oracle;
                    result = reserved ? simulate_trace(platform, catalog, trace, rm, oracle,
                                                       reservations)
                                      : simulate_trace(platform, catalog, trace, rm, oracle);
                } else {
                    NullPredictor off;
                    result = reserved
                                 ? simulate_trace(platform, catalog, trace, rm, off, reservations)
                                 : simulate_trace(platform, catalog, trace, rm, off);
                }
                rejection.add(result.rejection_percent());
                critical_energy.add(result.critical_energy);
            }
            table.row()
                .cell(reserved ? "on" : "off")
                .cell(predict ? "on" : "off")
                .cell(rejection.mean())
                .cell(critical_energy.mean(), 1);
        }
    }
    table.print(std::cout);

    std::cout << "\nReservations shrink the adaptive capacity (higher rejection), but the\n"
                 "critical windows execute exactly on schedule either way — and prediction\n"
                 "still helps the adaptive share.\n";
    return 0;
}
