// A real runtime predictor on a learnable workload.
//
// The paper abstracts prediction into accuracy knobs; its cited prior work
// learns patterns from real streams.  This example builds a stream that has
// patterns — a Markov chain over task types and two alternating interarrival
// phases (bursts and lulls) — and shows the OnlinePredictor learning them,
// then compares rejection rates: off vs online vs oracle.
#include <iostream>
#include <vector>

#include "core/heuristic_rm.hpp"
#include "predict/online.hpp"
#include "predict/oracle.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/trace_generator.hpp"

namespace {

using namespace rmwp;

/// A trace with structure an online predictor can exploit: types follow a
/// noisy cycle (type t is followed by type (t+1) mod K with probability
/// 0.85), and interarrival gaps alternate between a burst phase and a lull
/// phase every 25 requests.
Trace make_patterned_trace(const Catalog& catalog, std::size_t length, Rng& rng) {
    std::vector<Request> requests;
    requests.reserve(length);

    TaskTypeId type = rng.index(catalog.size());
    Time arrival = 0.0;
    for (std::size_t j = 0; j < length; ++j) {
        if (j > 0) {
            const bool burst = (j / 25) % 2 == 0;
            const double mean = burst ? 8.0 : 20.0;
            arrival += rng.gaussian_above(mean, mean * 0.1, mean * 0.2);
            type = rng.bernoulli(0.85) ? (type + 1) % catalog.size()
                                       : rng.index(catalog.size());
        }
        const TaskType& task_type = catalog.type(type);
        const auto& executable = task_type.executable_resources();
        const double rwcet = task_type.wcet(executable[rng.index(executable.size())]);
        requests.push_back(Request{arrival, type, rwcet * rng.uniform(1.5, 2.0)});
    }
    return Trace(std::move(requests));
}

} // namespace

int main() {
    const Platform platform = make_paper_platform();
    Rng rng(2024);
    const Catalog catalog = generate_catalog(platform, CatalogParams{.type_count = 12}, rng);

    Table table({"predictor", "rejection %", "energy (J)", "type accuracy"});

    const std::size_t trace_count = 10;
    for (const char* which : {"off", "online", "oracle"}) {
        RunningStats rejection;
        RunningStats energy;
        RunningStats accuracy;
        for (std::size_t t = 0; t < trace_count; ++t) {
            Rng trace_rng = rng.derive(t);
            const Trace trace = make_patterned_trace(catalog, 250, trace_rng);
            HeuristicRM rm;
            TraceResult result;
            if (std::string(which) == "off") {
                NullPredictor predictor;
                result = simulate_trace(platform, catalog, trace, rm, predictor);
            } else if (std::string(which) == "online") {
                OnlinePredictor predictor(catalog);
                result = simulate_trace(platform, catalog, trace, rm, predictor);
                accuracy.add(predictor.realized_type_accuracy());
            } else {
                OraclePredictor predictor;
                result = simulate_trace(platform, catalog, trace, rm, predictor);
            }
            rejection.add(result.rejection_percent());
            energy.add(result.total_energy);
        }
        table.row()
            .cell(which)
            .cell(rejection.mean())
            .cell(energy.mean(), 1)
            .cell(accuracy.empty() ? std::string("-")
                                   : format_fixed(100.0 * accuracy.mean(), 1) + " %");
    }

    table.print(std::cout);
    std::cout << "\nThe online predictor recovers a large share of the oracle's benefit on\n"
                 "patterned streams — consistent with the paper's premise that real-life\n"
                 "request streams are predictable enough to help (Sec 1).\n";
    return 0;
}
