// The paper's motivational example (Sec 3, Table 1, Fig 1), reproduced
// end to end on the real library:
//   (a) no prediction      -> tau_2 is rejected (acceptance 1/2);
//   (b) accurate prediction-> both tasks accepted (acceptance 2/2);
//   (c) wrong arrival time -> both accepted either way, but the predicted
//       mapping wastes energy (8.8 J vs 3.5 J).
// It also demonstrates how to hand-build a catalog and write a custom
// Predictor.
#include <iostream>
#include <vector>

#include "core/heuristic_rm.hpp"
#include "predict/predictor.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/catalog.hpp"

namespace {

using namespace rmwp;

/// Table 1's two task types on the CPU1/CPU2/GPU platform.  No migration
/// overhead: the example in the paper does not exercise migration.
Catalog make_table1_catalog() {
    const std::size_t n = 3;
    const std::vector<std::vector<double>> zero(n, std::vector<double>(n, 0.0));
    std::vector<TaskType> types;
    types.emplace_back(0, std::vector<double>{8.0, 12.0, 5.0},
                       std::vector<double>{7.3, 8.4, 2.0}, zero, zero);
    types.emplace_back(1, std::vector<double>{7.0, 8.5, 3.0},
                       std::vector<double>{6.2, 7.5, 1.5}, zero, zero);
    return Catalog(std::move(types));
}

/// A deliberately wrong oracle: predicts the next request's arrival at a
/// fixed (possibly incorrect) time while keeping type and deadline truthful.
class FixedArrivalPredictor final : public Predictor {
public:
    explicit FixedArrivalPredictor(Time claimed_arrival) : claimed_(claimed_arrival) {}

    [[nodiscard]] std::string name() const override { return "fixed-arrival"; }
    void observe(const Trace&, std::size_t) override {}
    [[nodiscard]] std::optional<PredictedTask> predict_next(const Trace& trace, std::size_t index,
                                                            Time now) override {
        if (index + 1 >= trace.size()) return std::nullopt;
        const Request& next = trace.request(index + 1);
        return PredictedTask{next.type, std::max(claimed_, now), next.relative_deadline};
    }

private:
    Time claimed_;
};

TraceResult run(const Platform& platform, const Catalog& catalog, const Trace& trace,
                Predictor& predictor) {
    HeuristicRM rm;
    return simulate_trace(platform, catalog, trace, rm, predictor);
}

} // namespace

int main() {
    const Platform platform = make_motivational_platform();
    const Catalog catalog = make_table1_catalog();

    // tau_1 at t=0 with d=8; tau_2 with d=5, arriving at t=1 (scenarios a/b)
    // or t=3 (scenario c).
    const Trace arrives_at_1({Request{0.0, 0, 8.0}, Request{1.0, 1, 5.0}});
    const Trace arrives_at_3({Request{0.0, 0, 8.0}, Request{3.0, 1, 5.0}});

    Table table({"scenario", "accepted", "rejected", "energy (J)"});

    {
        NullPredictor off;
        const TraceResult r = run(platform, catalog, arrives_at_1, off);
        table.row().cell("(a) no prediction, tau2 at t=1").cell(r.accepted).cell(r.rejected).cell(
            r.total_energy, 1);
    }
    {
        FixedArrivalPredictor accurate(1.0);
        const TraceResult r = run(platform, catalog, arrives_at_1, accurate);
        table.row().cell("(b) accurate prediction").cell(r.accepted).cell(r.rejected).cell(
            r.total_energy, 1);
    }
    {
        FixedArrivalPredictor wrong(1.0); // claims t=1, the task comes at t=3
        const TraceResult r = run(platform, catalog, arrives_at_3, wrong);
        table.row().cell("(c) wrong prediction, tau2 at t=3").cell(r.accepted).cell(r.rejected).cell(
            r.total_energy, 1);
    }
    {
        NullPredictor off;
        const TraceResult r = run(platform, catalog, arrives_at_3, off);
        table.row().cell("(c') no prediction, tau2 at t=3").cell(r.accepted).cell(r.rejected).cell(
            r.total_energy, 1);
    }

    table.print(std::cout);
    std::cout << "\nExpected from the paper: (a) rejects tau2; (b) accepts both;\n"
                 "(c) accepts both at 8.8 J while (c') accepts both at only 3.5 J —\n"
                 "an inaccurate prediction can be harmful.\n";
    return 0;
}
