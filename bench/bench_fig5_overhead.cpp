// E7 — Fig 5: rejection percentage vs prediction runtime overhead, VT
// group, perfectly accurate prediction.
//
// The overhead is coefficient x (average interarrival time); the horizontal
// axis in the paper is that coefficient x 100.  The RM's decision for an
// arriving task is delayed by the overhead, consuming deadline slack.
//
// Paper's shape: once the overhead exceeds ~2-4 % of the mean interarrival
// time, even perfectly accurate prediction performs worse than no
// prediction at all.
#include <iostream>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "util/table.hpp"

int main() {
    using namespace rmwp;
    using bench::scaled_config;

    bench::JsonReport report("fig5_overhead");

    const ExperimentConfig config = scaled_config(DeadlineGroup::very_tight, 50, 500);
    bench::print_header("E7", "Fig 5 — rejection % vs prediction overhead (VT group)", config);
    report.add_config("VT", config);
    ExperimentRunner runner(config);

    for (const RmKind rm : {RmKind::exact, RmKind::heuristic}) {
        const RunOutcome off = report.run(runner, RunSpec{rm, PredictorSpec::off()});

        std::cout << "overhead sweep (" << to_string(rm) << ")\n";
        Table table({"coeff x100", "rejection %", "loss % (rej+aborted)", "vs off (pp)"});
        for (const double coeff : {0.0, 0.01, 0.02, 0.03, 0.04, 0.06, 0.08}) {
            PredictorSpec spec = PredictorSpec::perfect();
            spec.overhead_interarrival_coeff = coeff;
            const RunOutcome outcome = report.run(runner, RunSpec{rm, spec});
            double loss = 0.0;
            for (const TraceResult& r : outcome.per_trace) loss += r.loss_percent();
            loss /= static_cast<double>(outcome.per_trace.size());
            table.row()
                .cell(coeff * 100.0, 0)
                .cell(outcome.mean_rejection_percent())
                .cell(loss)
                .cell(loss - off.mean_rejection_percent());
        }
        table.row().cell("off").cell(off.mean_rejection_percent()).cell(
            off.mean_rejection_percent()).cell("0.00");
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "expected shape: rejection grows with overhead and crosses the\n"
                 "predictor-off level at a few percent of the mean interarrival time.\n";
    return 0;
}
