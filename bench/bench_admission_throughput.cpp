// E18 (ours) — batched admission throughput: decisions per wall-clock
// second of the serve loop as a function of admission batch size
// (DESIGN.md §13).  The workload is the endless synthetic source with
// arrivals collapsed into bursts of B simultaneous requests (the
// per-request mean rate is unchanged, so every cell carries the same
// offered load); the sweep compares the sequential decision loop
// (batch_window < 0, one RM activation per request) against the batched
// loop (batch_window = 0, one decide_batch activation per burst) across
// burst sizes.  Sequential controls at selected burst sizes separate the
// batching speedup from any workload effect of burstiness itself.
//
// E20 (ours) — sharded admission throughput rides in the same binary:
// the islands platform whose partitioned catalog splits into four
// independent resource groups (DESIGN.md §15), decided by the batched
// loop under shard configs {1, 2, 4} x probe_jobs 4.  Decisions are
// bit-identical by contract, so the acceptance counts must agree across
// every cell (RMWP_ENSURE) and the sweep isolates pure solve-side
// speedup.  Writes BENCH_shard.json.
//
// Scaling: RMWP_SERVE_ARRIVALS (default 20000) arrivals per cell,
// RMWP_SEED for the master seed.  Writes BENCH_admission.json.
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/heuristic_rm.hpp"
#include "serve/serve.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "workload/catalog.hpp"

namespace {

using namespace rmwp;

/// Synthetic arrivals collapsed into bursts: every run of `burst`
/// consecutive requests shares the first member's arrival instant.  Mean
/// per-request rate, types, and relative deadlines are untouched, so the
/// offered load is identical across burst sizes.  Not seekable (the bench
/// never checkpoints).
class BurstSource final : public ArrivalSource {
public:
    BurstSource(const Catalog& catalog, const SyntheticSourceParams& params, std::size_t burst)
        : inner_(catalog, params), burst_(burst) {}

    [[nodiscard]] std::optional<Request> next() override {
        if (in_burst_ == 0) {
            const std::optional<Request> first = inner_.next();
            if (!first.has_value()) return std::nullopt;
            burst_arrival_ = first->arrival;
            in_burst_ = burst_;
            --in_burst_;
            return first;
        }
        std::optional<Request> request = inner_.next();
        if (!request.has_value()) return std::nullopt;
        --in_burst_;
        request->arrival = burst_arrival_;
        return request;
    }
    [[nodiscard]] bool seekable() const noexcept override { return false; }
    [[nodiscard]] SourceCursor cursor() const noexcept override { return {}; }
    void seek(const SourceCursor&) override {
        throw std::runtime_error("BurstSource is not seekable");
    }

private:
    SyntheticArrivalSource inner_;
    std::size_t burst_;
    std::size_t in_burst_ = 0; ///< members still owed at burst_arrival_
    Time burst_arrival_ = 0.0;
};

} // namespace

int main() {
    using namespace rmwp;

    const std::uint64_t arrivals = env_size("RMWP_SERVE_ARRIVALS", 20000);
    const std::uint64_t seed = env_size("RMWP_SEED", 42);

    PlatformBuilder builder;
    for (int i = 1; i <= 5; ++i) builder.add_cpu("CPU" + std::to_string(i));
    builder.add_gpu("GPU");
    const Platform platform = builder.build();
    CatalogParams catalog_params;
    Rng catalog_rng(seed);
    const Catalog catalog = generate_catalog(platform, catalog_params, catalog_rng);

    struct Cell {
        const char* label;
        std::size_t burst;
        double batch_window; ///< < 0 = sequential decision loop
    };
    const Cell cells[] = {
        // The PR-5-comparable baseline: one decision per arrival.
        {"sequential", 1, -1.0},
        // Batch-of-1 parity: the decide_batch path on singleton groups.
        {"batch=1", 1, 0.0},
        {"batch=2", 2, 0.0},
        {"batch=4", 4, 0.0},
        {"batch=8", 8, 0.0},
        {"seq@burst=8", 8, -1.0},
        {"batch=16", 16, 0.0},
        {"batch=32", 32, 0.0},
        {"seq@burst=32", 32, -1.0},
    };

    std::cout << "E18: batched admission throughput (ours)\n"
              << "setup: " << arrivals << " synthetic arrivals per cell, seed " << seed
              << ", 5 CPUs + 1 GPU, " << catalog.size()
              << " task types, heuristic RM + online predictor\n\n";

    bench::Json results = bench::Json::array();
    double sequential_dps = 0.0;
    double best_dps = 0.0;
    Table table({"configuration", "decisions/sec", "mean group", "accepted %", "p99 us",
                 "wall ms", "speedup"});
    for (const Cell& cell : cells) {
        HeuristicRM rm;
        PredictorSpec spec;
        spec.kind = PredictorSpec::Kind::online;
        const std::unique_ptr<Predictor> predictor = make_predictor(spec, catalog, Rng(seed));

        SyntheticSourceParams source_params;
        source_params.seed = seed;
        BurstSource source(catalog, source_params, cell.burst);

        ServeConfig config;
        config.sim.execution_seed = seed;
        config.max_arrivals = arrivals;
        config.batch_window = cell.batch_window;
        config.monitor_period_seconds = 0.1;
        config.limits.expect_no_misses = true;

        serve_clear_stop();
        const ServeResult serve =
            run_serve(platform, catalog, rm, *predictor, nullptr, source, config);
        RMWP_ENSURE(serve.exit_code == 0);

        const double dps = serve.wall_seconds > 0.0
                               ? static_cast<double>(serve.result.requests) / serve.wall_seconds
                               : 0.0;
        const double mean_group =
            serve.result.activations > 0
                ? static_cast<double>(serve.result.requests) /
                      static_cast<double>(serve.result.activations)
                : 0.0;
        const double accepted_percent =
            serve.result.requests > 0
                ? 100.0 * static_cast<double>(serve.result.accepted) /
                      static_cast<double>(serve.result.requests)
                : 0.0;
        if (std::string(cell.label) == "sequential") sequential_dps = dps;
        if (cell.batch_window >= 0.0 && dps > best_dps) best_dps = dps;
        const double speedup = sequential_dps > 0.0 ? dps / sequential_dps : 0.0;

        table.row()
            .cell(cell.label)
            .cell(dps, 0)
            .cell(mean_group, 2)
            .cell(accepted_percent, 1)
            .cell(serve.latency_p99_us, 0)
            .cell(serve.wall_seconds * 1000.0, 0)
            .cell(speedup, 2);

        bench::Json j = bench::Json::object();
        j.set("label", cell.label);
        j.set("burst", static_cast<std::uint64_t>(cell.burst));
        j.set("batch_window", cell.batch_window);
        j.set("arrivals", serve.arrivals);
        j.set("accepted", static_cast<std::uint64_t>(serve.result.accepted));
        j.set("rejected", static_cast<std::uint64_t>(serve.result.rejected));
        j.set("deadline_misses", static_cast<std::uint64_t>(serve.result.deadline_misses));
        j.set("activations", static_cast<std::uint64_t>(serve.result.activations));
        j.set("mean_group_size", mean_group);
        j.set("decisions_per_second", dps);
        j.set("latency_p99_us", serve.latency_p99_us);
        j.set("wall_ms", serve.wall_seconds * 1000.0);
        j.set("speedup_vs_sequential", speedup);
        results.push(std::move(j));
    }
    table.print(std::cout);

    bench::Json root = bench::Json::object();
    root.set("bench", "admission");
    root.set("arrivals_per_cell", arrivals);
    root.set("seed", seed);
    root.set("sequential_decisions_per_second", sequential_dps);
    root.set("best_batched_decisions_per_second", best_dps);
    root.set("best_speedup_vs_sequential", sequential_dps > 0.0 ? best_dps / sequential_dps : 0.0);
    root.set("cells", std::move(results));
    std::ofstream out("BENCH_admission.json");
    root.write(out, 0);
    out << '\n';
    if (out) std::cout << "wrote BENCH_admission.json\n";

    std::cout << "\nfinding: coalescing simultaneous arrivals into one decide_batch\n"
                 "activation amortises the plan rebuild, the sorted-block refresh, and the\n"
                 "schedule rebuild across the group; throughput grows with batch size while\n"
                 "the sequential controls at the same burstiness stay near the baseline.\n";

    // ---- E20: sharded admission on the islands platform ----
    //
    // Twenty-four CPUs, four GPUs, one DVFS core — round-robin over four
    // islands, so each island holds six CPUs and a GPU and the partitioned
    // catalog confines every task type to one island.  The platform is
    // deliberately big: Algorithm 1's refresh loop is superlinear in the
    // active-set size, so the whole-platform solve dominates the decision
    // and splitting it into four bucket-sized solves pays for the
    // fork-join.  All cells run the batched loop on the same burst-8
    // workload — the only variable is the shard config, and the
    // determinism contract makes every cell's decision stream identical.
    PlatformBuilder islands_builder;
    for (int k = 0; k < 24; ++k) islands_builder.add_cpu("CPU" + std::to_string(k));
    for (int k = 0; k < 4; ++k) islands_builder.add_gpu("GPU" + std::to_string(k));
    islands_builder.add_cpu_with_dvfs({1.0, 0.5}, "DVFS");
    const Platform islands = islands_builder.build();
    CatalogParams islands_params;
    islands_params.type_count = 32;
    Rng islands_rng(seed);
    const Catalog islands_catalog =
        generate_partitioned_catalog(islands, islands_params, 4, islands_rng);

    struct ShardCell {
        const char* label;
        std::size_t shards;
        std::size_t jobs;
    };
    const ShardCell shard_cells[] = {
        {"batched (shards=1)", 1, 1},
        // jobs=1 isolates the decomposition win (four bucket-sized solves
        // are superlinearly cheaper than one whole-platform solve) from
        // the parallelism win measured by the jobs=4 cells.
        {"shards=4 jobs=1", 4, 1},
        {"shards=2 jobs=4", 2, 4},
        {"shards=4 jobs=4", 4, 4},
    };

    std::cout << "\nE20: sharded admission throughput (ours)\n"
              << "setup: " << arrivals << " synthetic arrivals per cell, burst 8, seed " << seed
              << ", 24 CPUs + 4 GPUs + 1 DVFS core in 4 islands, " << islands_catalog.size()
              << " island-confined task types, heuristic RM + online predictor\n\n";

    bench::Json shard_results = bench::Json::array();
    double batched_dps = 0.0;
    double best_sharded_dps = 0.0;
    std::uint64_t reference_accepted = 0;
    std::uint64_t reference_rejected = 0;
    Table shard_table(
        {"configuration", "decisions/sec", "accepted %", "p99 us", "wall ms", "speedup"});
    for (const ShardCell& cell : shard_cells) {
        HeuristicRM rm;
        rm.set_shard_config({cell.shards, cell.jobs});
        PredictorSpec spec;
        spec.kind = PredictorSpec::Kind::online;
        const std::unique_ptr<Predictor> predictor =
            make_predictor(spec, islands_catalog, Rng(seed));

        SyntheticSourceParams source_params;
        source_params.seed = seed;
        // The default mean is calibrated for the 6-resource platform;
        // with ~5x the capacity here, arrivals come ~5x as fast so the
        // active set stays proportionally loaded and the solver sees
        // platform-sized instances.
        source_params.interarrival_mean = 1.2;
        source_params.interarrival_stddev = 0.4;
        BurstSource source(islands_catalog, source_params, 8);

        ServeConfig config;
        config.sim.execution_seed = seed;
        config.max_arrivals = arrivals;
        config.batch_window = 0.0;
        config.monitor_period_seconds = 0.1;
        config.limits.expect_no_misses = true;

        serve_clear_stop();
        const ServeResult serve =
            run_serve(islands, islands_catalog, rm, *predictor, nullptr, source, config);
        RMWP_ENSURE(serve.exit_code == 0);

        // The determinism contract in numbers: every shard config must
        // accept and reject exactly the same requests.
        if (cell.shards == 1) {
            reference_accepted = serve.result.accepted;
            reference_rejected = serve.result.rejected;
        }
        RMWP_ENSURE(serve.result.accepted == reference_accepted);
        RMWP_ENSURE(serve.result.rejected == reference_rejected);

        const double dps = serve.wall_seconds > 0.0
                               ? static_cast<double>(serve.result.requests) / serve.wall_seconds
                               : 0.0;
        const double accepted_percent =
            serve.result.requests > 0
                ? 100.0 * static_cast<double>(serve.result.accepted) /
                      static_cast<double>(serve.result.requests)
                : 0.0;
        if (cell.shards == 1) batched_dps = dps;
        if (cell.shards > 1 && dps > best_sharded_dps) best_sharded_dps = dps;
        const double speedup = batched_dps > 0.0 ? dps / batched_dps : 0.0;

        shard_table.row()
            .cell(cell.label)
            .cell(dps, 0)
            .cell(accepted_percent, 1)
            .cell(serve.latency_p99_us, 0)
            .cell(serve.wall_seconds * 1000.0, 0)
            .cell(speedup, 2);

        bench::Json j = bench::Json::object();
        j.set("label", cell.label);
        j.set("shards", static_cast<std::uint64_t>(cell.shards));
        j.set("probe_jobs", static_cast<std::uint64_t>(cell.jobs));
        j.set("arrivals", serve.arrivals);
        j.set("accepted", static_cast<std::uint64_t>(serve.result.accepted));
        j.set("rejected", static_cast<std::uint64_t>(serve.result.rejected));
        j.set("deadline_misses", static_cast<std::uint64_t>(serve.result.deadline_misses));
        j.set("decisions_per_second", dps);
        j.set("latency_p99_us", serve.latency_p99_us);
        j.set("wall_ms", serve.wall_seconds * 1000.0);
        j.set("speedup_vs_batched", speedup);
        shard_results.push(std::move(j));
    }
    shard_table.print(std::cout);

    bench::Json shard_root = bench::Json::object();
    shard_root.set("bench", "shard");
    shard_root.set("arrivals_per_cell", arrivals);
    shard_root.set("seed", seed);
    shard_root.set("batched_decisions_per_second", batched_dps);
    shard_root.set("best_sharded_decisions_per_second", best_sharded_dps);
    shard_root.set("best_speedup_vs_batched",
                   batched_dps > 0.0 ? best_sharded_dps / batched_dps : 0.0);
    shard_root.set("cells", std::move(shard_results));
    std::ofstream shard_out("BENCH_shard.json");
    shard_root.write(shard_out, 0);
    shard_out << '\n';
    if (shard_out) std::cout << "wrote BENCH_shard.json\n";

    std::cout << "\nfinding: partitioning the admission solve by resource group turns one\n"
                 "whole-platform plan into four bucket-sized plans solved concurrently; the\n"
                 "acceptance counts stay bit-identical across shard configs, so the speedup\n"
                 "is pure solver parallelism with no behavioural drift.\n";
    return 0;
}
