// E3 — Fig 2a / 2b: average rejection percentage with the predictor on
// (accurate) and off, for the exact optimiser and the heuristic, on the LT
// and VT deadline groups.
//
// Paper's shape: prediction lowers rejection by ~1 pp (LT) / ~9.2 pp (VT)
// for the exact RM and ~2.6 pp (LT) / ~10.2 pp (VT) for the heuristic; the
// benefit is clearly larger under tight deadlines, and the heuristic tracks
// the exact optimiser within a few points.
//
// This bench also carries the parallel engine's speedup measurement: the
// LT heuristic/off cell is timed at the configured job count and serially,
// the two outcomes are verified bit-identical, and serial_ms / parallel_ms /
// speedup land in BENCH_fig2_rejection.json.
#include <iostream>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "util/table.hpp"

int main() {
    using namespace rmwp;
    using bench::scaled_config;

    bench::JsonReport report("fig2_rejection");

    for (const DeadlineGroup group : {DeadlineGroup::less_tight, DeadlineGroup::very_tight}) {
        const ExperimentConfig config = scaled_config(group, 50, 500);
        const char* group_name = group == DeadlineGroup::less_tight ? "LT" : "VT";
        report.add_config(group_name, config);
        if (group == DeadlineGroup::less_tight)
            bench::print_header(
                "E3", "Fig 2 — rejection % for {exact, heuristic} x {pred on, off}", config);

        ExperimentRunner runner(config);
        if (group == DeadlineGroup::less_tight)
            report.record_speedup(runner, RunSpec{RmKind::heuristic, PredictorSpec::off()});

        Table table({"RM", "predictor", "rejection %", "95% CI", "benefit (pp)", "paired p"});
        std::cout << "Fig 2" << (group == DeadlineGroup::less_tight ? "a (LT)" : "b (VT)")
                  << "\n";
        const std::string prefix = std::string(group_name) + "/";
        for (const RmKind rm : {RmKind::exact, RmKind::heuristic}) {
            const RunOutcome off = report.run(runner, RunSpec{rm, PredictorSpec::off()}, prefix);
            const RunOutcome on =
                report.run(runner, RunSpec{rm, PredictorSpec::perfect()}, prefix);
            const PairedTTest significance =
                paired_rejection_test(off.per_trace, on.per_trace);
            table.row()
                .cell(to_string(rm))
                .cell("off")
                .cell(off.mean_rejection_percent())
                .cell("+/- " + format_fixed(off.aggregate.rejection_percent.ci_halfwidth(), 2))
                .cell("-")
                .cell("-");
            table.row()
                .cell(to_string(rm))
                .cell("on")
                .cell(on.mean_rejection_percent())
                .cell("+/- " + format_fixed(on.aggregate.rejection_percent.ci_halfwidth(), 2))
                .cell(off.mean_rejection_percent() - on.mean_rejection_percent())
                .cell(significance.p_value < 1e-4
                          ? std::string("< 1e-4")
                          : format_fixed(significance.p_value, 4));
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "paper: benefit LT 1.0 pp (exact) / 2.6 pp (heuristic);\n"
                 "       benefit VT 9.17 pp (exact) / 10.2 pp (heuristic).\n"
                 "expected shape: VT benefit >> LT benefit; exact <= heuristic rejection.\n";
    return 0;
}
