// E11 (ours) — multi-step lookahead: how much does predicting more than
// one request ahead buy?
//
// The paper plans with the single next request (tau_p) and leaves deeper
// horizons open.  This bench sweeps the lookahead depth at two load levels
// of the VT workload.  The admission ladder trims the furthest prediction
// on planning failure, so deeper horizons can only constrain mapping
// choices, never admission itself.
#include <iostream>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "util/table.hpp"

int main() {
    using namespace rmwp;
    using bench::scaled_config;

    bench::JsonReport report("lookahead");

    struct Load {
        const char* name;
        double interarrival;
    };
    for (const Load load : {Load{"moderate (ia=6)", 6.0}, Load{"heavy (ia=3.5)", 3.5}}) {
        ExperimentConfig config = scaled_config(DeadlineGroup::very_tight, 30, 400);
        config.trace.interarrival_mean = load.interarrival;
        config.trace.interarrival_stddev = load.interarrival / 3.0;
        if (load.interarrival == 6.0)
            bench::print_header("E11", "rejection % vs prediction lookahead depth (ours)",
                                config);
        ExperimentRunner runner(config);
        report.add_config(load.name, config);

        std::cout << "load: " << load.name << '\n';
        Table table({"lookahead", "rejection % (heuristic)", "rejection % (exact)"});
        for (const std::size_t depth : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                        std::size_t{3}, std::size_t{5}}) {
            PredictorSpec spec = depth == 0 ? PredictorSpec::off() : PredictorSpec::perfect();
            spec.lookahead = depth;
            const std::string prefix =
                std::string(load.name) + "/depth" + std::to_string(depth) + "/";
            const RunOutcome heuristic =
                report.run(runner, RunSpec{RmKind::heuristic, spec}, prefix);
            const RunOutcome exact = report.run(runner, RunSpec{RmKind::exact, spec}, prefix);
            table.row()
                .cell(depth == 0 ? std::string("off") : std::to_string(depth))
                .cell(heuristic.mean_rejection_percent())
                .cell(exact.mean_rejection_percent());
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "finding: the benefit keeps growing well past the paper's depth of 1 —\n"
                 "each extra predicted request lets the mapper keep scarce resources free\n"
                 "further into the future, and under heavy load (where one step barely\n"
                 "helps) depth 5 recovers a multi-point rejection cut.  Deeper lookahead\n"
                 "is where the magnitude the paper reports for one step lives in this\n"
                 "implementation.\n";
    return 0;
}
