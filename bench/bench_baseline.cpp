// E14 (ours) — decomposing the paper's machinery: how much acceptance comes
// from full replanning (remap + migrate the whole active set at every
// arrival, Sec 2) and how much from prediction?
//
// Four managers on the same traces:
//   baseline            greedy placement, tasks never move, no prediction
//   heuristic / off     the paper's Algorithm 1 without prediction
//   heuristic / on      ... with accurate prediction
//   exact / on          the optimal envelope
#include <iostream>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "util/table.hpp"

int main() {
    using namespace rmwp;
    using bench::scaled_config;

    bench::JsonReport report("baseline");

    for (const DeadlineGroup group : {DeadlineGroup::less_tight, DeadlineGroup::very_tight}) {
        const ExperimentConfig config = scaled_config(group, 40, 400);
        if (group == DeadlineGroup::less_tight)
            bench::print_header("E14", "replanning vs prediction decomposition (ours)", config);
        ExperimentRunner runner(config);
        const char* group_name = group == DeadlineGroup::less_tight ? "LT" : "VT";
        report.add_config(group_name, config);

        std::cout << to_string(group) << " deadlines\n";
        Table table({"configuration", "rejection %", "gain vs baseline (pp)",
                     "normalized energy", "migrations/trace"});
        const RunOutcome baseline =
            report.run(runner, RunSpec{RmKind::baseline, PredictorSpec::off()},
                       std::string(group_name) + "/");
        struct Entry {
            const char* name;
            RunSpec spec;
        } entries[] = {
            {"baseline (greedy, frozen)", {RmKind::baseline, PredictorSpec::off()}},
            {"heuristic, pred off", {RmKind::heuristic, PredictorSpec::off()}},
            {"heuristic, pred on", {RmKind::heuristic, PredictorSpec::perfect()}},
            {"exact, pred on", {RmKind::exact, PredictorSpec::perfect()}},
        };
        for (const Entry& entry : entries) {
            const RunOutcome outcome =
                report.run(runner, entry.spec, std::string(group_name) + "/" + entry.name + ": ");
            table.row()
                .cell(entry.name)
                .cell(outcome.mean_rejection_percent())
                .cell(baseline.mean_rejection_percent() - outcome.mean_rejection_percent())
                .cell(outcome.mean_normalized_energy(), 4)
                .cell(outcome.aggregate.migrations.mean(), 1);
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "finding: the paper bundles two mechanisms; this separates the share of\n"
                 "acceptance bought by whole-set replanning from the share bought by the\n"
                 "one-step lookahead on top of it.\n";
    return 0;
}
