// E15 (ours) — activation policy: per-arrival (the paper) vs periodic
// batching, with and without prediction overhead.
//
// Waking the RM on every arrival minimises queueing delay but pays the
// prediction/decision overhead once per request; waking periodically
// amortises the overhead over a batch at the cost of slack.  With a
// per-activation overhead there is an interior optimum.
#include <iostream>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/heuristic_rm.hpp"
#include "predict/oracle.hpp"
#include "predict/predictor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
    using namespace rmwp;
    using bench::scaled_config;

    const ExperimentConfig config = scaled_config(DeadlineGroup::very_tight, 25, 400);
    bench::print_header("E15", "loss % vs RM activation period (ours)", config);
    bench::JsonReport report("activation");
    report.add_config("VT", config);
    ExperimentRunner runner(config);
    const double mean_interarrival = config.trace.interarrival_mean;
    const std::size_t jobs = default_jobs();

    for (const double coeff : {0.0, 0.04, 0.12}) {
        std::cout << "per-activation overhead = " << format_fixed(coeff * 100.0, 0)
                  << " % of mean interarrival (oracle prediction)\n";
        Table table({"activation period", "activations/trace", "rejection %",
                     "loss % (rej+aborted)"});
        for (const double period_ia : {0.0, 0.5, 1.0, 2.0, 4.0}) {
            const bench::WallTimer timer;
            std::vector<TraceResult> results(runner.traces().size());
            parallel_for(jobs, results.size(), [&](std::size_t t) {
                const Trace& trace = runner.traces()[t];
                HeuristicRM rm;
                OraclePredictor oracle(coeff * trace.mean_interarrival());
                SimOptions options;
                options.activation_period = period_ia * mean_interarrival;
                results[t] = simulate_trace(runner.platform(), runner.catalog(), trace, rm,
                                            oracle, options);
            });
            RunningStats rejection;
            RunningStats loss;
            RunningStats activations;
            for (const TraceResult& result : results) {
                rejection.add(result.rejection_percent());
                loss.add(result.loss_percent());
                activations.add(static_cast<double>(result.activations));
            }
            report.add_cell_results("coeff " + format_fixed(coeff, 2) + "/period " +
                                        format_fixed(period_ia, 1),
                                    results, timer.elapsed_ms(), jobs);
            table.row()
                .cell(period_ia == 0.0 ? std::string("per-arrival (paper)")
                                       : format_fixed(period_ia, 1) + " x interarrival")
                .cell(activations.mean(), 0)
                .cell(rejection.mean())
                .cell(loss.mean());
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "finding: without overhead, per-arrival activation (the paper's choice)\n"
                 "is clearly optimal — batching only adds queueing delay.  Amortisation\n"
                 "wins only at extreme per-activation overheads (>= ~12 % of the mean\n"
                 "interarrival, far beyond Fig 5's 2-4 % viability bound), where 2-4x\n"
                 "batching beats per-arrival on total loss.  The paper's per-arrival\n"
                 "protocol is the right default across its whole viable overhead range.\n";
    return 0;
}
