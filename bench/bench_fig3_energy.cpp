// E4 — Fig 3a / 3b: average normalised energy for the same four
// configurations as Fig 2, on the LT and VT groups.
//
// Paper's shape: energy closely follows acceptance — a smaller rejection
// percentage means more admitted workload and therefore *higher* energy;
// for VT, the exact optimiser buys its acceptance with a more favourable
// energy increase than the heuristic.
#include <iostream>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "util/table.hpp"

int main() {
    using namespace rmwp;
    using bench::scaled_config;

    bench::JsonReport report("fig3_energy");

    for (const DeadlineGroup group : {DeadlineGroup::less_tight, DeadlineGroup::very_tight}) {
        const ExperimentConfig config = scaled_config(group, 50, 500);
        const char* group_name = group == DeadlineGroup::less_tight ? "LT" : "VT";
        report.add_config(group_name, config);
        if (group == DeadlineGroup::less_tight)
            bench::print_header("E4", "Fig 3 — normalized energy for {exact, heuristic} x "
                                      "{pred on, off}", config);

        ExperimentRunner runner(config);

        Table table({"RM", "predictor", "normalized energy", "acceptance %",
                     "energy per accepted pp"});
        std::cout << "Fig 3" << (group == DeadlineGroup::less_tight ? "a (LT)" : "b (VT)")
                  << "\n";
        for (const RmKind rm : {RmKind::exact, RmKind::heuristic}) {
            for (const bool predict : {false, true}) {
                const RunOutcome outcome = report.run(
                    runner,
                    RunSpec{rm, predict ? PredictorSpec::perfect() : PredictorSpec::off()},
                    std::string(group_name) + "/");
                const double acceptance = 100.0 - outcome.mean_rejection_percent();
                table.row()
                    .cell(to_string(rm))
                    .cell(predict ? "on" : "off")
                    .cell(outcome.mean_normalized_energy(), 4)
                    .cell(acceptance)
                    .cell(acceptance > 0.0 ? outcome.mean_normalized_energy() / acceptance * 100.0
                                           : 0.0,
                          4);
            }
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "expected shape: higher acceptance -> higher normalized energy (more\n"
                 "workload executed); the exact optimiser's energy-per-acceptance ratio is\n"
                 "no worse than the heuristic's.\n";
    return 0;
}
