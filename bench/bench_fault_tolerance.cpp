// E16 (ours) — resource management under faults: transient outages and
// thermal throttling strike the platform while the trace runs, and a
// fault-rescue RM activation re-plans the surviving task set.
//
// Three managers on the same traces and the same fault schedules:
//   baseline    greedy, non-replanning: displaced tasks are simply aborted
//   heuristic   Algorithm 1 re-plans the survivors onto the healthy cores
//   exact       the optimal rescue envelope
//
// The rescue guarantee is absolute: a rescued task never misses its
// deadline (validated inside the simulator), so fault tolerance shows up as
// fewer fault-aborted tasks, not as deadline misses.
#include <iostream>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "util/table.hpp"

int main() {
    using namespace rmwp;
    using bench::scaled_config;

    struct Scenario {
        const char* name;
        FaultParams fault;
    };
    FaultParams outages;
    outages.outage_rate = 1.5;         // per core per 1000 ms
    outages.outage_duration_mean = 60.0;
    outages.min_online = 2;
    FaultParams mixed = outages;
    mixed.throttle_rate = 1.5;
    mixed.throttle_duration_mean = 80.0;
    mixed.permanent_prob = 0.1;
    const Scenario scenarios[] = {
        {"transient outages", outages},
        {"outages + throttling + permanent", mixed},
    };

    bench::JsonReport report("fault_tolerance");

    bool first = true;
    for (const Scenario& scenario : scenarios) {
        ExperimentConfig config = scaled_config(DeadlineGroup::less_tight, 30, 300);
        config.fault = scenario.fault;
        if (first) {
            bench::print_header("E16", "fault injection and rescue re-planning (ours)", config);
            first = false;
        }
        ExperimentRunner runner(config);
        report.add_config(scenario.name, config);

        std::cout << scenario.name << " (outage rate " << scenario.fault.outage_rate
                  << "/core/1000ms, throttle rate " << scenario.fault.throttle_rate << ")\n";
        Table table({"configuration", "loss %", "rescued/trace", "fault-aborted/trace",
                     "rescue migr/trace", "degraded energy"});
        const RunSpec specs[] = {
            {RmKind::baseline, PredictorSpec::off()},
            {RmKind::heuristic, PredictorSpec::off()},
            {RmKind::heuristic, PredictorSpec::perfect()},
            {RmKind::exact, PredictorSpec::perfect()},
        };
        for (const RunSpec& spec : specs) {
            const RunOutcome outcome =
                report.run(runner, spec, std::string(scenario.name) + "/");
            double degraded = 0.0;
            for (const TraceResult& r : outcome.per_trace) degraded += r.degraded_energy;
            table.row()
                .cell(spec.label())
                .cell(outcome.aggregate.loss_percent.mean())
                .cell(outcome.aggregate.rescued.mean(), 2)
                .cell(outcome.aggregate.fault_aborted.mean(), 2)
                .cell(outcome.aggregate.migrations.mean(), 1)
                .cell(degraded / static_cast<double>(outcome.per_trace.size()), 1);
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "finding: the non-replanning baseline loses every task that was running on\n"
                 "a failed core; the replanning managers migrate most of them onto the\n"
                 "surviving capacity and only abort what provably cannot make its deadline\n"
                 "any more.\n";
    return 0;
}
