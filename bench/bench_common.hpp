// Shared plumbing for the experiment benches: environment-scaled trace
// budgets and consistent headers.
//
// Every bench accepts:
//   RMWP_TRACES   — traces per deadline group            (default: per-bench)
//   RMWP_REQUESTS — requests per trace                   (default: per-bench)
//   RMWP_SEED     — master seed                          (default: 42)
// The paper's full study is RMWP_TRACES=500 RMWP_REQUESTS=500; bench
// defaults are chosen so the whole suite completes in laptop-minutes while
// preserving the paper's shapes.
#pragma once

#include <cstdint>
#include <iostream>

#include "exec/task_pool.hpp"
#include "exp/runner.hpp"

namespace rmwp::bench {

inline ExperimentConfig scaled_config(DeadlineGroup group, std::size_t default_traces,
                                      std::size_t default_requests) {
    ExperimentConfig config = ExperimentConfig::paper(group);
    config.trace_count = env_size("RMWP_TRACES", default_traces);
    config.trace.length = env_size("RMWP_REQUESTS", default_requests);
    config.seed = env_size("RMWP_SEED", 42);
    return config;
}

inline void print_header(const char* id, const char* what, const ExperimentConfig& config) {
    std::cout << id << ": " << what << '\n'
              << "setup: " << config.trace_count << " traces x " << config.trace.length
              << " requests, seed " << config.seed << ", interarrival Gaussian("
              << config.trace.interarrival_mean << ", " << config.trace.interarrival_stddev
              << "^2), jobs " << default_jobs() << "\n\n";
}

} // namespace rmwp::bench
