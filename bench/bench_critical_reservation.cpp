// E10 (ours) — adaptive performance under design-time critical
// reservations (Sec 2's mixed-criticality integration).
//
// Sweeps the reserved share of the GPU (the resource the prediction
// mechanism fights over) and reports the adaptive rejection rate with the
// predictor on and off.  Expected shape: rejection grows with the reserved
// share; the prediction benefit persists (and initially grows — the scarcer
// the GPU, the more valuable knowing who needs it next) until the
// reservations dominate.
#include <iostream>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/heuristic_rm.hpp"
#include "core/reservation.hpp"
#include "predict/oracle.hpp"
#include "predict/predictor.hpp"
#include "util/table.hpp"

int main() {
    using namespace rmwp;
    using bench::scaled_config;

    const ExperimentConfig config = scaled_config(DeadlineGroup::very_tight, 30, 400);
    bench::print_header("E10", "adaptive rejection vs reserved GPU share (ours)", config);

    bench::JsonReport report("critical_reservation");
    report.add_config("VT", config);
    ExperimentRunner runner(config);
    const Platform& platform = runner.platform();
    const Catalog& catalog = runner.catalog();
    const ResourceId gpu = platform.size() - 1;
    const std::size_t jobs = default_jobs();

    Table table({"GPU reserved %", "rejection off", "rejection on", "benefit (pp)",
                 "critical energy/trace"});
    for (const double share : {0.0, 0.1, 0.2, 0.3, 0.4}) {
        const Time period = 20.0;
        ReservationTable reservations;
        if (share > 0.0) {
            reservations = ReservationTable(
                {CriticalTask{"gpu-critical", gpu, period, 0.0, share * period, 2.0}});
        }

        const bench::WallTimer timer;
        std::vector<TraceResult> base_results(runner.traces().size());
        std::vector<TraceResult> predicted_results(runner.traces().size());
        parallel_for(jobs, runner.traces().size(), [&](std::size_t t) {
            const Trace& trace = runner.traces()[t];
            HeuristicRM rm;
            NullPredictor off;
            base_results[t] =
                share > 0.0 ? simulate_trace(platform, catalog, trace, rm, off, reservations)
                            : simulate_trace(platform, catalog, trace, rm, off);
            OraclePredictor oracle;
            predicted_results[t] =
                share > 0.0 ? simulate_trace(platform, catalog, trace, rm, oracle, reservations)
                            : simulate_trace(platform, catalog, trace, rm, oracle);
        });
        const double wall_ms = timer.elapsed_ms();
        const std::string share_label = "share " + format_fixed(share, 1);
        report.add_cell_results(share_label + "/off", base_results, wall_ms, jobs);
        report.add_cell_results(share_label + "/on", predicted_results, wall_ms, jobs);

        double off_rejection = 0.0;
        double on_rejection = 0.0;
        double critical_energy = 0.0;
        for (std::size_t t = 0; t < runner.traces().size(); ++t) {
            off_rejection += base_results[t].rejection_percent();
            on_rejection += predicted_results[t].rejection_percent();
            critical_energy += base_results[t].critical_energy;
        }
        const auto count = static_cast<double>(runner.traces().size());
        off_rejection /= count;
        on_rejection /= count;
        critical_energy /= count;

        table.row()
            .cell(share * 100.0, 0)
            .cell(off_rejection)
            .cell(on_rejection)
            .cell(off_rejection - on_rejection)
            .cell(critical_energy, 1);
    }
    table.print(std::cout);

    std::cout << "\nexpected shape: rejection grows with the reserved share; prediction\n"
                 "keeps (or grows) its benefit while spare GPU capacity remains.\n";
    return 0;
}
