// E8 — ablations beyond the paper: how much do Algorithm 1's design
// choices contribute, and how close does a real online predictor get to the
// oracle the paper assumes?
//
//  (1) task-selection order: max-regret (paper) vs EDF vs arrival order;
//  (2) desirability measure: remaining energy (paper) vs energy density
//      (energy per occupied millisecond);
//  (3) predictor realism: off vs online (Markov + two-phase interarrival)
//      vs noisy-at-realistic-accuracy vs oracle.  The paper's prior work
//      reports ~80-95 % type accuracy and ~17 % arrival error on real
//      streams; the noisy row uses exactly those figures.
#include <iostream>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/heuristic_rm.hpp"
#include "util/table.hpp"

int main() {
    using namespace rmwp;
    using bench::scaled_config;

    bench::JsonReport report("ablations");

    const ExperimentConfig config = scaled_config(DeadlineGroup::very_tight, 50, 500);
    bench::print_header("E8", "ablations: Algorithm 1 design choices + predictor realism",
                        config);
    ExperimentRunner runner(config);
    report.add_config("VT", config);

    {
        std::cout << "(1) + (2): heuristic design choices, predictor on\n";
        Table table({"order", "desirability", "rejection %", "normalized energy"});
        using Options = HeuristicRM::Options;
        const std::pair<const char*, Options::Order> orders[] = {
            {"max-regret (paper)", Options::Order::max_regret},
            {"edf", Options::Order::edf},
            {"arrival", Options::Order::arrival},
        };
        const std::pair<const char*, Options::Desirability> measures[] = {
            {"energy (paper)", Options::Desirability::energy},
            {"energy density", Options::Desirability::energy_density},
        };
        for (const auto& [order_name, order] : orders) {
            for (const auto& [measure_name, measure] : measures) {
                HeuristicRM rm(Options{order, measure});
                const RunOutcome outcome =
                    report.run_with(runner, rm, PredictorSpec::perfect(),
                                    std::string(order_name) + " + " + measure_name);
                table.row()
                    .cell(order_name)
                    .cell(measure_name)
                    .cell(outcome.mean_rejection_percent())
                    .cell(outcome.mean_normalized_energy(), 4);
            }
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    {
        std::cout << "(3): predictor realism, paper heuristic\n";
        Table table({"predictor", "rejection %", "benefit vs off (pp)"});
        const RunOutcome off =
            report.run(runner, RunSpec{RmKind::heuristic, PredictorSpec::off()}, "realism/");

        PredictorSpec realistic;
        realistic.kind = PredictorSpec::Kind::noisy;
        realistic.type_accuracy = 0.875; // midpoint of the 80-95 % reported in [12, 13]
        realistic.time_nrmse = 0.17;     // "error of less than 17 %" (Sec 1)

        PredictorSpec online;
        online.kind = PredictorSpec::Kind::online;

        struct Row {
            const char* name;
            PredictorSpec spec;
        } rows[] = {
            {"off", PredictorSpec::off()},
            {"online (markov + two-phase)", online},
            {"noisy @ prior-work accuracy", realistic},
            {"oracle", PredictorSpec::perfect()},
        };
        for (const Row& row : rows) {
            const RunOutcome outcome = report.run(
                runner, RunSpec{RmKind::heuristic, row.spec},
                std::string("realism/") + row.name + ": ");
            table.row()
                .cell(row.name)
                .cell(outcome.mean_rejection_percent())
                .cell(off.mean_rejection_percent() - outcome.mean_rejection_percent());
        }
        table.print(std::cout);
    }

    {
        // On a *patterned* stream (two-phase arrivals + Markov types — the
        // structure the authors' prior work reports in real traces) the
        // online predictor closes most of the gap to the oracle.
        ExperimentConfig patterned = config;
        patterned.trace.arrival_model = ArrivalModel::two_phase;
        patterned.trace.type_correlation = 0.85;
        ExperimentRunner patterned_runner(patterned);
        report.add_config("VT patterned", patterned);

        std::cout << "\n(3b): predictor realism on a patterned stream "
                     "(two-phase arrivals, correlated types)\n";
        Table table({"predictor", "rejection %", "benefit vs off (pp)"});
        const RunOutcome off = report.run(
            patterned_runner, RunSpec{RmKind::heuristic, PredictorSpec::off()}, "patterned/");
        PredictorSpec online;
        online.kind = PredictorSpec::Kind::online;
        for (const auto& [name, spec] :
             {std::pair<const char*, PredictorSpec>{"off", PredictorSpec::off()},
              {"online (markov + two-phase)", online},
              {"oracle", PredictorSpec::perfect()}}) {
            const RunOutcome outcome = report.run(
                patterned_runner, RunSpec{RmKind::heuristic, spec},
                std::string("patterned/") + name + ": ");
            table.row()
                .cell(name)
                .cell(outcome.mean_rejection_percent())
                .cell(off.mean_rejection_percent() - outcome.mean_rejection_percent());
        }
        table.print(std::cout);
    }

    std::cout << "\nexpected: max-regret+energy (the paper's choices) is on the efficient\n"
                 "frontier; prior-work-accuracy prediction retains most of the oracle's\n"
                 "benefit (consistent with Fig 4's >= 0.75 accuracy region).\n";
    return 0;
}
