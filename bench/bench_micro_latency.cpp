// E9 — RM decision latency (google-benchmark).
//
// The paper's practicality argument rests on the heuristic being orders of
// magnitude cheaper than exact optimisation (Sec 4.2: the MILP "is not
// applicable in practice").  This microbenchmark measures one decide() call
// against the active-set size for the heuristic, the branch-and-bound exact
// optimiser, and the literal MILP encoding on the in-repo simplex solver.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/exact_rm.hpp"
#include "core/heuristic_rm.hpp"
#include "core/milp_rm.hpp"
#include "platform/platform.hpp"
#include "util/rng.hpp"
#include "workload/catalog.hpp"

namespace {

using namespace rmwp;

struct Fixture {
    Platform platform = make_paper_platform();
    Catalog catalog = [] {
        Rng rng(1234);
        CatalogParams params;
        params.type_count = 24;
        return generate_catalog(make_paper_platform(), params, rng);
    }();
    std::vector<ActiveTask> active;
    ArrivalContext context;

    /// An activation with `n` active tasks spread over the resources, a new
    /// candidate, and a predicted task — deadlines sized so the instance is
    /// feasible but not trivially loose.
    explicit Fixture(std::size_t n) {
        Rng rng(99 + n);
        std::vector<double> load(platform.size(), 0.0);
        for (std::size_t j = 0; j < n; ++j) {
            ActiveTask task;
            task.uid = j;
            task.type = rng.index(catalog.size());
            task.arrival = 0.0;
            const ResourceId resource = j % platform.size();
            task.resource = resource;
            const TaskType& type = catalog.type(task.type);
            const ResourceId home = type.executable_on(resource)
                                        ? resource
                                        : type.executable_resources().front();
            task.resource = home;
            load[home] += type.wcet(home);
            task.absolute_deadline = load[home] * 1.8 + 20.0;
            active.push_back(task);
        }

        context.now = 0.0;
        context.platform = &platform;
        context.catalog = &catalog;
        context.active = active;

        context.candidate.uid = 10000;
        context.candidate.type = 0;
        context.candidate.arrival = 0.0;
        context.candidate.absolute_deadline =
            catalog.type(0).mean_wcet() * 2.0 + 30.0;

        PredictedTask predicted;
        predicted.type = 1;
        predicted.arrival = 5.0;
        predicted.relative_deadline = catalog.type(1).min_wcet() * 1.8;
        context.predicted = {predicted};
    }
};

void BM_HeuristicDecide(benchmark::State& state) {
    Fixture fixture(static_cast<std::size_t>(state.range(0)));
    HeuristicRM rm;
    for (auto _ : state) {
        Decision decision = rm.decide(fixture.context);
        benchmark::DoNotOptimize(decision);
    }
}
BENCHMARK(BM_HeuristicDecide)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(24);

void BM_ExactDecide(benchmark::State& state) {
    Fixture fixture(static_cast<std::size_t>(state.range(0)));
    ExactRM rm;
    for (auto _ : state) {
        Decision decision = rm.decide(fixture.context);
        benchmark::DoNotOptimize(decision);
    }
}
BENCHMARK(BM_ExactDecide)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

/// Adversarial variant: deadlines squeezed to ~1.05x the accumulated load,
/// so the branch-and-bound search has to backtrack through near-infeasible
/// assignments — the regime where exact optimisation actually hurts.
void BM_ExactDecideTight(benchmark::State& state) {
    Fixture fixture(static_cast<std::size_t>(state.range(0)));
    std::vector<ActiveTask> tight = fixture.active;
    for (ActiveTask& task : tight)
        task.absolute_deadline = (task.absolute_deadline - 20.0) / 1.8 * 1.05 + 8.0;
    fixture.context.active = tight;
    ExactRM rm;
    for (auto _ : state) {
        Decision decision = rm.decide(fixture.context);
        benchmark::DoNotOptimize(decision);
    }
}
BENCHMARK(BM_ExactDecideTight)->Arg(8)->Arg(12)->Arg(16);

void BM_HeuristicDecideTight(benchmark::State& state) {
    Fixture fixture(static_cast<std::size_t>(state.range(0)));
    std::vector<ActiveTask> tight = fixture.active;
    for (ActiveTask& task : tight)
        task.absolute_deadline = (task.absolute_deadline - 20.0) / 1.8 * 1.05 + 8.0;
    fixture.context.active = tight;
    HeuristicRM rm;
    for (auto _ : state) {
        Decision decision = rm.decide(fixture.context);
        benchmark::DoNotOptimize(decision);
    }
}
BENCHMARK(BM_HeuristicDecideTight)->Arg(8)->Arg(12)->Arg(16);

void BM_MilpDecide(benchmark::State& state) {
    Fixture fixture(static_cast<std::size_t>(state.range(0)));
    MilpRM rm;
    for (auto _ : state) {
        Decision decision = rm.decide(fixture.context);
        benchmark::DoNotOptimize(decision);
    }
}
BENCHMARK(BM_MilpDecide)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ScheduleFeasibility(benchmark::State& state) {
    Fixture fixture(static_cast<std::size_t>(state.range(0)));
    const PlanInstance instance = PlanInstance::build(fixture.context, true);
    std::vector<ScheduleItem> items;
    for (std::size_t j = 0; j < instance.tasks.size(); ++j)
        items.push_back(instance.item_for(j, instance.tasks[j].executable.front()));
    const Resource& resource = fixture.platform.resource(items.front().resource);
    for (auto _ : state) {
        bool feasible = resource_feasible(resource, 0.0, items);
        benchmark::DoNotOptimize(feasible);
    }
}
BENCHMARK(BM_ScheduleFeasibility)->Arg(4)->Arg(16);

} // namespace

// Like BENCHMARK_MAIN(), but defaulting to a JSON artefact alongside the
// console output so this bench matches the BENCH_<id>.json convention of
// the experiment benches.  An explicit --benchmark_out wins.
int main(int argc, char** argv) {
    std::vector<char*> args(argv, argv + argc);
    std::string out_flag = "--benchmark_out=BENCH_micro_latency.json";
    std::string format_flag = "--benchmark_out_format=json";
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(format_flag.data());
    }
    int count = static_cast<int>(args.size());
    benchmark::Initialize(&count, args.data());
    if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
