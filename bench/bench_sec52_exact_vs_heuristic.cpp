// E2 — Sec 5.2: exact optimisation vs the fast heuristic, no prediction.
//
// Paper's numbers (500 VT + 500 LT traces):
//   * average rejection: MILP 24.5 %, heuristic 31 %;
//   * MILP acceptance >= heuristic on 88 % of traces (not 100 %: a locally
//     optimal decision can lose to a lucky suboptimal one on the long run).
//
// Both RM cells of each group run through ParallelRunner::run_all, which
// fans the full (cell x trace) grid across the worker threads — the exact
// optimiser's slow traces overlap the heuristic's fast ones instead of
// serialising behind them.
#include <iostream>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "exp/parallel_runner.hpp"
#include "util/table.hpp"

int main() {
    using namespace rmwp;
    using bench::scaled_config;

    bench::JsonReport report("sec52_exact_vs_heuristic");
    report.set("note", "wall_ms is the shared wall-clock of the group's 2-spec batch");

    std::vector<TraceResult> exact_all;
    std::vector<TraceResult> heuristic_all;

    Table table({"group", "RM", "rejection %", "95% CI", "normalized energy"});
    for (const DeadlineGroup group : {DeadlineGroup::very_tight, DeadlineGroup::less_tight}) {
        const ExperimentConfig config = scaled_config(group, 50, 500);
        const char* group_name = group == DeadlineGroup::very_tight ? "VT" : "LT";
        report.add_config(group_name, config);
        if (group == DeadlineGroup::very_tight)
            bench::print_header("E2", "exact vs heuristic without prediction (paper Sec 5.2)",
                                config);

        const ParallelRunner parallel(config);
        const RunSpec specs[] = {{RmKind::exact, PredictorSpec::off()},
                                 {RmKind::heuristic, PredictorSpec::off()}};
        const bench::WallTimer timer;
        const std::vector<RunOutcome> outcomes = parallel.run_all(specs);
        const double batch_ms = timer.elapsed_ms();
        const RunOutcome& exact = outcomes[0];
        const RunOutcome& heuristic = outcomes[1];
        for (const RunOutcome& outcome : outcomes)
            report.add_cell(std::string(group_name) + "/" + outcome.spec.label(), outcome,
                            batch_ms, parallel.jobs());

        for (const RunOutcome* outcome : {&exact, &heuristic}) {
            table.row()
                .cell(to_string(group))
                .cell(to_string(outcome->spec.rm))
                .cell(outcome->mean_rejection_percent())
                .cell("+/- " + format_fixed(outcome->aggregate.rejection_percent.ci_halfwidth(), 2))
                .cell(outcome->mean_normalized_energy(), 3);
        }
        exact_all.insert(exact_all.end(), exact.per_trace.begin(), exact.per_trace.end());
        heuristic_all.insert(heuristic_all.end(), heuristic.per_trace.begin(),
                             heuristic.per_trace.end());
    }
    table.print(std::cout);

    double exact_rejection = 0.0;
    double heuristic_rejection = 0.0;
    for (const TraceResult& r : exact_all) exact_rejection += r.rejection_percent();
    for (const TraceResult& r : heuristic_all) heuristic_rejection += r.rejection_percent();
    exact_rejection /= static_cast<double>(exact_all.size());
    heuristic_rejection /= static_cast<double>(heuristic_all.size());

    const PairedComparison comparison = compare_acceptance(exact_all, heuristic_all);
    std::cout << "\ncombined (VT+LT) rejection: exact " << format_fixed(exact_rejection, 2)
              << " %, heuristic " << format_fixed(heuristic_rejection, 2)
              << " %   (paper: 24.5 % vs 31 %)\n"
              << "traces where exact acceptance >= heuristic: "
              << format_fixed(comparison.a_better_or_equal_percent(), 1)
              << " %  (strictly better: " << format_fixed(comparison.a_strictly_better_percent(), 1)
              << " %; paper: higher on 88 %)\n";
    return 0;
}
