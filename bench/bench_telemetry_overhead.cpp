// E19 (ours) — telemetry overhead: serve-mode throughput with the full
// observability stack live (telemetry endpoint + stage profiler + HDR
// latency recording) versus the bare hot path.  The claim under test
// (DESIGN.md §14): instrumentation costs < 3 % of decisions/sec, because
// the hot path only touches thread-local counters (clock pair on every
// 64th call) and relaxed atomics, and all rendering happens on the
// telemetry thread against published snapshots.
//
// Scaling: RMWP_SERVE_ARRIVALS (default 20000) arrivals per cell,
// RMWP_SEED for the master seed, RMWP_BENCH_REPS (default 3) repetitions
// per cell (best-of to shed scheduler noise).  Writes BENCH_telemetry.json.
#include <algorithm>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/heuristic_rm.hpp"
#include "obs/stage_timer.hpp"
#include "serve/serve.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "workload/catalog.hpp"

int main() {
    using namespace rmwp;

    const std::uint64_t arrivals = env_size("RMWP_SERVE_ARRIVALS", 20000);
    const std::uint64_t seed = env_size("RMWP_SEED", 42);
    const std::uint64_t reps = std::max<std::uint64_t>(1, env_size("RMWP_BENCH_REPS", 3));

    PlatformBuilder builder;
    for (int i = 1; i <= 5; ++i) builder.add_cpu("CPU" + std::to_string(i));
    builder.add_gpu("GPU");
    const Platform platform = builder.build();
    CatalogParams catalog_params;
    Rng catalog_rng(seed);
    const Catalog catalog = generate_catalog(platform, catalog_params, catalog_rng);

    struct Cell {
        const char* label;
        bool telemetry; ///< live /metrics endpoint (port 0 = ephemeral)
        bool profiler;  ///< StageStats block installed
    };
    const Cell cells[] = {
        {"bare", false, false},
        {"profiler", false, true},
        {"telemetry+profiler", true, true},
    };

    std::cout << "E19: telemetry overhead on the serve hot path (ours)\n"
              << "setup: " << arrivals << " synthetic arrivals per cell, best of " << reps
              << " reps, seed " << seed << ", 5 CPUs + 1 GPU\n\n";

    struct Outcome {
        double decisions_per_second = 0.0;
        double wall_ms = 0.0;
        ServeResult serve;
    };
    Outcome outcomes[3];

    bench::Json results = bench::Json::array();
    Table table({"configuration", "decisions/sec", "p99 us", "stage ns/decision", "wall ms",
                 "vs bare"});
    for (std::size_t index = 0; index < 3; ++index) {
        const Cell& cell = cells[index];
        Outcome best;
        obs::StageStats stages;
        for (std::uint64_t rep = 0; rep < reps; ++rep) {
            HeuristicRM rm;
            NullPredictor predictor;
            SyntheticSourceParams source_params;
            source_params.seed = seed;
            SyntheticArrivalSource source(catalog, source_params);

            ServeConfig config;
            config.sim.execution_seed = seed;
            config.max_arrivals = arrivals;
            config.monitor_period_seconds = 0.1;
            config.limits.expect_no_misses = true;
            if (cell.telemetry) config.telemetry_port = 0;
            obs::StageStats rep_stages;
            if (cell.profiler) config.stage_stats_out = &rep_stages;

            serve_clear_stop();
            const ServeResult serve =
                run_serve(platform, catalog, rm, predictor, nullptr, source, config);
            RMWP_ENSURE(serve.exit_code == 0);
            const double dps = serve.wall_seconds > 0.0
                                   ? static_cast<double>(serve.result.requests) / serve.wall_seconds
                                   : 0.0;
            if (dps > best.decisions_per_second) {
                best.decisions_per_second = dps;
                best.wall_ms = serve.wall_seconds * 1000.0;
                best.serve = serve;
                stages = rep_stages;
            }
        }
        outcomes[index] = best;

        // The three cells run the identical deterministic workload: any drift
        // in decisions means the instrumentation leaked into the decisions.
        RMWP_ENSURE(best.serve.result.accepted == outcomes[0].serve.result.accepted);
        RMWP_ENSURE(best.serve.result.rejected == outcomes[0].serve.result.rejected);
        RMWP_ENSURE(best.serve.result.deadline_misses == outcomes[0].serve.result.deadline_misses);

        const std::uint64_t decide_calls = stages.cell(obs::Stage::decide).calls;
        const double stage_ns_per_decision =
            decide_calls > 0
                ? static_cast<double>(stages.estimated_ns(obs::Stage::decide)) /
                      static_cast<double>(decide_calls)
                : 0.0;
        const double versus_bare =
            outcomes[0].decisions_per_second > 0.0
                ? best.decisions_per_second / outcomes[0].decisions_per_second
                : 1.0;
        table.row()
            .cell(cell.label)
            .cell(best.decisions_per_second, 0)
            .cell(best.serve.latency_p99_us, 0)
            .cell(stage_ns_per_decision, 0)
            .cell(best.wall_ms, 0)
            .cell(versus_bare, 3);

        bench::Json j = bench::Json::object();
        j.set("label", cell.label);
        j.set("decisions_per_second", best.decisions_per_second);
        j.set("latency_p50_us", best.serve.latency_p50_us);
        j.set("latency_p99_us", best.serve.latency_p99_us);
        j.set("latency_p999_us", best.serve.latency_p999_us);
        j.set("stage_ns_per_decision", stage_ns_per_decision);
        j.set("telemetry_requests", best.serve.telemetry_requests);
        j.set("wall_ms", best.wall_ms);
        j.set("throughput_vs_bare", versus_bare);
        results.push(std::move(j));
    }
    table.print(std::cout);

    const double regression =
        outcomes[0].decisions_per_second > 0.0
            ? 1.0 - outcomes[2].decisions_per_second / outcomes[0].decisions_per_second
            : 0.0;
    std::cout << "\ntelemetry+profiler regression vs bare: " << regression * 100.0 << " %\n";
    // The acceptance bound from ISSUE 9.  Best-of-N already sheds most
    // scheduler noise; a real > 3 % cost means a hot-path regression.
    RMWP_ENSURE(regression < 0.03);

    bench::Json root = bench::Json::object();
    root.set("bench", "telemetry");
    root.set("arrivals_per_cell", arrivals);
    root.set("reps", reps);
    root.set("seed", seed);
    root.set("regression_vs_bare", regression);
    root.set("cells", std::move(results));
    std::ofstream out("BENCH_telemetry.json");
    root.write(out, 0);
    out << '\n';
    if (out) std::cout << "wrote BENCH_telemetry.json\n";

    std::cout << "\nfinding: the full observability stack — live /metrics endpoint, sampled\n"
                 "stage profiler, HDR latency recording — stays within the 3 % throughput\n"
                 "budget because the hot path only increments thread-local counters and\n"
                 "relaxed atomics; rendering runs on the telemetry thread from snapshots.\n";
    return 0;
}
