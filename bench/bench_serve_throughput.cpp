// E17 (ours) — serve-mode throughput: the long-running admission service
// (DESIGN.md §11) driven from the endless synthetic source, measured in
// decisions per wall-clock second with per-arrival service latency
// percentiles.  Cells cover each RM with prediction off/online, plus an
// overload cell (bounded backlog, deterministic shedding) and a
// fault-injection cell (chunked schedules + rescue re-planning on the hot
// path).
//
// Scaling: RMWP_SERVE_ARRIVALS (default 20000) arrivals per cell,
// RMWP_SEED for the master seed.  Writes BENCH_serve.json.
#include <iostream>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/baseline_rm.hpp"
#include "core/exact_rm.hpp"
#include "core/heuristic_rm.hpp"
#include "serve/serve.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "workload/catalog.hpp"

int main() {
    using namespace rmwp;

    const std::uint64_t arrivals = env_size("RMWP_SERVE_ARRIVALS", 20000);
    const std::uint64_t seed = env_size("RMWP_SEED", 42);

    PlatformBuilder builder;
    for (int i = 1; i <= 5; ++i) builder.add_cpu("CPU" + std::to_string(i));
    builder.add_gpu("GPU");
    const Platform platform = builder.build();
    CatalogParams catalog_params;
    Rng catalog_rng(seed);
    const Catalog catalog = generate_catalog(platform, catalog_params, catalog_rng);

    struct Cell {
        const char* label;
        const char* rm;
        bool online;
        std::size_t max_pending;
        double decision_cost;
        bool faults;
    };
    const Cell cells[] = {
        {"baseline", "baseline", false, 0, 0.0, false},
        {"heuristic", "heuristic", false, 0, 0.0, false},
        {"heuristic+online", "heuristic", true, 0, 0.0, false},
        {"exact", "exact", false, 0, 0.0, false},
        // Decision cost above the ~6ms mean interarrival: the decider falls
        // behind, the backlog saturates, and shedding engages.
        {"heuristic+overload", "heuristic", false, 4, 8.0, false},
        {"heuristic+faults", "heuristic", false, 0, 0.0, true},
    };

    std::cout << "E17: serve-mode throughput (ours)\n"
              << "setup: " << arrivals << " synthetic arrivals per cell, seed " << seed
              << ", 5 CPUs + 1 GPU, " << catalog.size() << " task types\n\n";

    bench::Json results = bench::Json::array();
    Table table({"configuration", "decisions/sec", "p50 us", "p99 us", "accepted %", "shed",
                 "wall ms"});
    for (const Cell& cell : cells) {
        std::unique_ptr<ResourceManager> rm;
        if (std::string(cell.rm) == "baseline") rm = std::make_unique<BaselineRM>();
        else if (std::string(cell.rm) == "exact") rm = std::make_unique<ExactRM>();
        else rm = std::make_unique<HeuristicRM>();

        PredictorSpec spec;
        if (cell.online) spec.kind = PredictorSpec::Kind::online;
        const std::unique_ptr<Predictor> predictor = make_predictor(spec, catalog, Rng(seed));

        SyntheticSourceParams source_params;
        source_params.seed = seed;
        SyntheticArrivalSource source(catalog, source_params);

        ServeConfig config;
        config.sim.execution_seed = seed;
        config.max_arrivals = arrivals;
        config.max_pending = cell.max_pending;
        config.decision_cost = cell.decision_cost;
        config.monitor_period_seconds = 0.1;
        if (cell.faults) {
            config.faults.outage_rate = 0.5;
            config.faults.throttle_rate = 0.5;
            config.fault_seed = seed;
            config.limits.expect_no_misses = false;
        } else {
            config.limits.expect_no_misses = true;
        }

        serve_clear_stop();
        const ServeResult serve =
            run_serve(platform, catalog, *rm, *predictor, nullptr, source, config);
        RMWP_ENSURE(serve.exit_code == 0);

        const double decisions_per_second =
            serve.wall_seconds > 0.0
                ? static_cast<double>(serve.result.requests) / serve.wall_seconds
                : 0.0;
        const double accepted_percent =
            serve.result.requests > 0
                ? 100.0 * static_cast<double>(serve.result.accepted) /
                      static_cast<double>(serve.result.requests)
                : 0.0;
        table.row()
            .cell(cell.label)
            .cell(decisions_per_second, 0)
            .cell(serve.latency_p50_us, 0)
            .cell(serve.latency_p99_us, 0)
            .cell(accepted_percent, 1)
            .cell(serve.shed)
            .cell(serve.wall_seconds * 1000.0, 0);

        bench::Json j = bench::Json::object();
        j.set("label", cell.label);
        j.set("arrivals", serve.arrivals);
        j.set("accepted", static_cast<std::uint64_t>(serve.result.accepted));
        j.set("rejected", static_cast<std::uint64_t>(serve.result.rejected));
        j.set("shed", serve.shed);
        j.set("completed", static_cast<std::uint64_t>(serve.result.completed));
        j.set("deadline_misses", static_cast<std::uint64_t>(serve.result.deadline_misses));
        j.set("decisions_per_second", decisions_per_second);
        j.set("latency_p50_us", serve.latency_p50_us);
        j.set("latency_p99_us", serve.latency_p99_us);
        j.set("wall_ms", serve.wall_seconds * 1000.0);
        j.set("monitor_checks", serve.monitor_checks);
        results.push(std::move(j));
    }
    table.print(std::cout);

    bench::Json root = bench::Json::object();
    root.set("bench", "serve");
    root.set("arrivals_per_cell", arrivals);
    root.set("seed", seed);
    root.set("cells", std::move(results));
    std::ofstream out("BENCH_serve.json");
    root.write(out, 0);
    out << '\n';
    if (out) std::cout << "wrote BENCH_serve.json\n";

    std::cout << "\nfinding: the streaming engine sustains the batch path's admission\n"
                 "throughput without holding the trace in memory; overload shedding and\n"
                 "chunked fault injection cost little on the hot path.\n";
    return 0;
}
