// E12 (ours) — DVFS ablation: what does exposing frequency levels to the
// mapper buy, and how does it interact with prediction?
//
// Same cores with and without {1.0, 0.75, 0.5} operating points, LT and VT
// deadline groups, predictor on/off.  Expected shape: large energy savings
// under loose deadlines at equal acceptance; the saving shrinks under tight
// deadlines (full speed needed); prediction benefits survive DVFS.
#include <iostream>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/heuristic_rm.hpp"
#include "predict/oracle.hpp"
#include "predict/predictor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace rmwp;

Platform make_platform(bool dvfs) {
    PlatformBuilder builder;
    for (int i = 1; i <= 5; ++i) {
        if (dvfs) builder.add_cpu_with_dvfs({1.0, 0.75, 0.5}, "CPU" + std::to_string(i));
        else builder.add_cpu("CPU" + std::to_string(i));
    }
    builder.add_gpu("GPU");
    return builder.build();
}

} // namespace

int main() {
    using namespace bench;
    const std::size_t traces = env_size("RMWP_TRACES", 25);
    const std::size_t requests = env_size("RMWP_REQUESTS", 400);
    const std::uint64_t seed = env_size("RMWP_SEED", 42);

    std::cout << "E12: DVFS operating points x prediction (ours)\n"
              << "setup: " << traces << " traces x " << requests << " requests, seed " << seed
              << ", jobs " << default_jobs() << "\n\n";

    JsonReport report("dvfs");
    const std::size_t jobs = default_jobs();

    const Platform plain = make_platform(false);
    const Platform dvfs = make_platform(true);
    Rng catalog_rng_a = Rng(seed).derive(1);
    const Catalog plain_catalog = generate_catalog(plain, CatalogParams{}, catalog_rng_a);
    Rng catalog_rng_b = Rng(seed).derive(1);
    const Catalog dvfs_catalog = generate_catalog(dvfs, CatalogParams{}, catalog_rng_b);

    Table table({"group", "platform", "predictor", "rejection %", "energy (J)",
                 "energy vs plain"});
    for (const DeadlineGroup group : {DeadlineGroup::less_tight, DeadlineGroup::very_tight}) {
        TraceGenParams params;
        params.length = requests;
        params.group = group;
        const auto trace_set =
            generate_traces(plain_catalog, params, traces, Rng(seed).derive(2));

        double plain_energy_baseline = 0.0;
        for (const bool use_dvfs : {false, true}) {
            for (const bool predict : {false, true}) {
                const WallTimer timer;
                std::vector<TraceResult> results(trace_set.size());
                parallel_for(jobs, trace_set.size(), [&](std::size_t t) {
                    const Trace& trace = trace_set[t];
                    HeuristicRM rm;
                    std::unique_ptr<Predictor> predictor;
                    if (predict) predictor = std::make_unique<OraclePredictor>();
                    else predictor = std::make_unique<NullPredictor>();
                    results[t] = use_dvfs
                                     ? simulate_trace(dvfs, dvfs_catalog, trace, rm, *predictor)
                                     : simulate_trace(plain, plain_catalog, trace, rm, *predictor);
                });
                RunningStats rejection;
                RunningStats energy;
                for (const TraceResult& result : results) {
                    rejection.add(result.rejection_percent());
                    energy.add(result.total_energy);
                }
                report.add_cell_results(std::string(to_string(group)) + "/" +
                                            (use_dvfs ? "dvfs" : "plain") + "/" +
                                            (predict ? "on" : "off"),
                                        results, timer.elapsed_ms(), jobs);
                if (!use_dvfs && !predict) plain_energy_baseline = energy.mean();
                const double delta =
                    100.0 * (energy.mean() / plain_energy_baseline - 1.0);
                table.row()
                    .cell(to_string(group))
                    .cell(use_dvfs ? "dvfs" : "plain")
                    .cell(predict ? "on" : "off")
                    .cell(rejection.mean())
                    .cell(energy.mean(), 0)
                    .cell(format_fixed(delta, 1) + " %");
            }
        }
    }
    table.print(std::cout);

    std::cout << "\nexpected shape: DVFS cuts energy sharply under LT deadlines at equal\n"
                 "(or better) acceptance; the saving shrinks under VT; the prediction\n"
                 "benefit persists on the DVFS platform.\n\n";

    // --- static-power ablation: race-to-idle vs slow-down -----------------
    std::cout << "static-energy ablation (LT group, DVFS platform, predictor off):\n";
    Table ablation({"static fraction", "energy (J)", "vs s=0"});
    double baseline = 0.0;
    for (const double s : {0.0, 0.25, 0.5, 0.75}) {
        CatalogParams params;
        params.static_energy_fraction = s;
        Rng catalog_rng = Rng(seed).derive(1);
        const Catalog catalog = generate_catalog(dvfs, params, catalog_rng);

        TraceGenParams trace_params;
        trace_params.length = requests;
        trace_params.group = DeadlineGroup::less_tight;
        const auto trace_set = generate_traces(catalog, trace_params, traces, Rng(seed).derive(2));

        const WallTimer timer;
        std::vector<TraceResult> results(trace_set.size());
        parallel_for(jobs, trace_set.size(), [&](std::size_t t) {
            HeuristicRM rm;
            NullPredictor off;
            results[t] = simulate_trace(dvfs, catalog, trace_set[t], rm, off);
        });
        RunningStats energy;
        for (const TraceResult& result : results) energy.add(result.total_energy);
        report.add_cell_results("static " + format_fixed(s, 2), results, timer.elapsed_ms(),
                                jobs);
        if (s == 0.0) baseline = energy.mean();
        ablation.row()
            .cell(s, 2)
            .cell(energy.mean(), 0)
            .cell(format_fixed(100.0 * (energy.mean() / baseline - 1.0), 1) + " %");
    }
    ablation.print(std::cout);
    std::cout << "\nwith leakage in the model, crawling at the lowest frequency stops\n"
                 "paying: the mapper settles on interior operating points and the total\n"
                 "energy rises with the static share.\n";
    return 0;
}
