// E1 — Table 1 / Fig 1 (Sec 3): the motivational scenarios, regenerated.
//
// Paper's rows:
//   (a) RM without prediction, tau2 at t=1 -> tau2 rejected (acceptance 1/2)
//   (b) RM with accurate prediction        -> both accepted (acceptance 2/2)
//   (c) prediction says t=1, tau2 at t=3   -> both accepted, 8.8 J
//   (c') no prediction, tau2 at t=3        -> both accepted, 3.5 J
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/exact_rm.hpp"
#include "core/heuristic_rm.hpp"
#include "predict/predictor.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/catalog.hpp"

namespace {

using namespace rmwp;

Catalog make_table1_catalog() {
    const std::size_t n = 3;
    const std::vector<std::vector<double>> zero(n, std::vector<double>(n, 0.0));
    std::vector<TaskType> types;
    types.emplace_back(0, std::vector<double>{8.0, 12.0, 5.0},
                       std::vector<double>{7.3, 8.4, 2.0}, zero, zero);
    types.emplace_back(1, std::vector<double>{7.0, 8.5, 3.0},
                       std::vector<double>{6.2, 7.5, 1.5}, zero, zero);
    return Catalog(std::move(types));
}

class FixedArrivalPredictor final : public Predictor {
public:
    explicit FixedArrivalPredictor(Time claimed_arrival) : claimed_(claimed_arrival) {}
    [[nodiscard]] std::string name() const override { return "fixed"; }
    void observe(const Trace&, std::size_t) override {}
    [[nodiscard]] std::optional<PredictedTask> predict_next(const Trace& trace, std::size_t index,
                                                            Time now) override {
        if (index + 1 >= trace.size()) return std::nullopt;
        const Request& next = trace.request(index + 1);
        return PredictedTask{next.type, std::max(claimed_, now), next.relative_deadline};
    }

private:
    Time claimed_;
};

} // namespace

int main() {
    const Platform platform = make_motivational_platform();
    const Catalog catalog = make_table1_catalog();
    const Trace at1({Request{0.0, 0, 8.0}, Request{1.0, 1, 5.0}});
    const Trace at3({Request{0.0, 0, 8.0}, Request{3.0, 1, 5.0}});

    std::cout << "E1: Table 1 / Fig 1 motivational scenarios (paper Sec 3)\n\n";

    bench::JsonReport report("table1_motivation");

    for (const char* rm_name : {"heuristic", "exact"}) {
        Table table({"scenario", "accepted/total", "energy (J)", "paper"});
        auto run_case = [&](const char* label, const Trace& trace, Predictor& predictor,
                            const char* paper) {
            const bench::WallTimer timer;
            TraceResult result;
            if (std::string(rm_name) == "heuristic") {
                HeuristicRM rm;
                result = simulate_trace(platform, catalog, trace, rm, predictor);
            } else {
                ExactRM rm;
                result = simulate_trace(platform, catalog, trace, rm, predictor);
            }
            report.add_cell_results(std::string(rm_name) + "/" + label, {&result, 1},
                                    timer.elapsed_ms(), 1);
            table.row()
                .cell(label)
                .cell(std::to_string(result.accepted) + "/" + std::to_string(result.requests))
                .cell(result.total_energy, 1)
                .cell(paper);
        };

        NullPredictor off;
        FixedArrivalPredictor accurate(1.0);
        FixedArrivalPredictor wrong(1.0);
        NullPredictor off2;
        run_case("(a)  no prediction, tau2@1", at1, off, "1/2 accepted");
        run_case("(b)  accurate prediction", at1, accurate, "2/2 accepted");
        run_case("(c)  wrong prediction, tau2@3", at3, wrong, "2/2, 8.8 J");
        run_case("(c') no prediction,  tau2@3", at3, off2, "2/2, 3.5 J");

        std::cout << "resource manager: " << rm_name << '\n';
        table.print(std::cout);
        std::cout << '\n';
    }
    return 0;
}
