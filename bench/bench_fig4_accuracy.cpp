// E5/E6 — Fig 4a / 4b: rejection percentage under degraded prediction
// accuracy, VT group.
//
// Fig 4a sweeps task-type accuracy: at accuracy a the identity is predicted
// incorrectly with probability 1-a at each step (arrival time exact).
// Fig 4b sweeps arrival-time accuracy: accuracy a means the normalised RMSE
// of the arrival-time prediction is 1-a (identity exact).
//
// Paper's shape: rejection rises monotonically as accuracy drops, towards
// the predictor-off level; at accuracy 0.25 prediction no longer offers any
// sensible benefit.
#include <iostream>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "util/table.hpp"

int main() {
    using namespace rmwp;
    using bench::scaled_config;

    bench::JsonReport report("fig4_accuracy");

    const ExperimentConfig config = scaled_config(DeadlineGroup::very_tight, 50, 500);
    bench::print_header("E5/E6", "Fig 4 — rejection % vs prediction accuracy (VT group)",
                        config);
    report.add_config("VT", config);
    ExperimentRunner runner(config);

    for (const RmKind rm : {RmKind::exact, RmKind::heuristic}) {
        const RunOutcome off = report.run(runner, RunSpec{rm, PredictorSpec::off()});

        std::cout << "Fig 4a — task-type accuracy sweep (" << to_string(rm) << ")\n";
        Table type_table({"type accuracy", "rejection %", "95% CI"});
        for (const double accuracy : {1.0, 0.75, 0.5, 0.25}) {
            PredictorSpec spec;
            spec.kind = PredictorSpec::Kind::noisy;
            spec.type_accuracy = accuracy;
            const RunOutcome outcome = report.run(runner, RunSpec{rm, spec}, "type/");
            type_table.row().cell(accuracy, 2).cell(outcome.mean_rejection_percent()).cell(
                "+/- " + format_fixed(outcome.aggregate.rejection_percent.ci_halfwidth(), 2));
        }
        type_table.row().cell("off").cell(off.mean_rejection_percent()).cell(
            "+/- " + format_fixed(off.aggregate.rejection_percent.ci_halfwidth(), 2));
        type_table.print(std::cout);

        std::cout << "\nFig 4b — arrival-time accuracy sweep (" << to_string(rm) << ")\n";
        Table time_table({"time accuracy (1-NRMSE)", "rejection %", "95% CI"});
        for (const double accuracy : {1.0, 0.75, 0.5, 0.25}) {
            PredictorSpec spec;
            spec.kind = PredictorSpec::Kind::noisy;
            spec.time_nrmse = 1.0 - accuracy;
            const RunOutcome outcome = report.run(runner, RunSpec{rm, spec}, "time/");
            time_table.row().cell(accuracy, 2).cell(outcome.mean_rejection_percent()).cell(
                "+/- " + format_fixed(outcome.aggregate.rejection_percent.ci_halfwidth(), 2));
        }
        time_table.row().cell("off").cell(off.mean_rejection_percent()).cell(
            "+/- " + format_fixed(off.aggregate.rejection_percent.ci_halfwidth(), 2));
        time_table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "expected shape: rejection increases as either accuracy drops and\n"
                 "approaches the predictor-off row; ~0.25 accuracy offers no benefit.\n";
    return 0;
}
