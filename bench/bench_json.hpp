// Machine-readable bench artefacts: every experiment bench writes a
// BENCH_<id>.json file in the working directory recording its configuration,
// one metrics object per (RM, predictor) cell with the cell's wall-clock
// time, and — where the bench opts in via record_speedup — a serial vs
// parallel timing comparison whose results are verified bit-identical
// before the speedup is reported.  CI uploads these files as artefacts so
// perf regressions are visible without re-running the suite.
//
// The Json value type is deliberately tiny: ordered objects, arrays, and
// scalars, with round-trip double formatting (%.17g).  No parsing, no
// external dependency.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace rmwp::bench {

/// Minimal ordered JSON value (null / bool / integer / double / string /
/// array / object).  Objects preserve insertion order so the artefacts diff
/// cleanly between runs.
class Json {
public:
    Json() = default;
    Json(bool b) : value_(b) {}
    Json(double d) : value_(d) {}
    Json(std::uint64_t u) : value_(u) {}
    Json(int i) : value_(static_cast<std::int64_t>(i)) {}
    Json(const char* s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}

    [[nodiscard]] static Json array() {
        Json j;
        j.value_ = Array{};
        return j;
    }
    [[nodiscard]] static Json object() {
        Json j;
        j.value_ = Object{};
        return j;
    }

    Json& push(Json v) {
        std::get<Array>(value_).push_back(std::move(v));
        return *this;
    }
    Json& set(std::string key, Json v) {
        std::get<Object>(value_).emplace_back(std::move(key), std::move(v));
        return *this;
    }
    [[nodiscard]] bool is_null() const noexcept {
        return std::holds_alternative<std::nullptr_t>(value_);
    }

    void write(std::ostream& out, int indent = 0) const {
        const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
        const std::string inner(static_cast<std::size_t>(indent + 1) * 2, ' ');
        if (const auto* b = std::get_if<bool>(&value_)) {
            out << (*b ? "true" : "false");
        } else if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
            out << *u;
        } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
            out << *i;
        } else if (const auto* d = std::get_if<double>(&value_)) {
            write_double(out, *d);
        } else if (const auto* s = std::get_if<std::string>(&value_)) {
            write_string(out, *s);
        } else if (const auto* array = std::get_if<Array>(&value_)) {
            if (array->empty()) {
                out << "[]";
                return;
            }
            out << "[\n";
            for (std::size_t k = 0; k < array->size(); ++k) {
                out << inner;
                (*array)[k].write(out, indent + 1);
                out << (k + 1 < array->size() ? ",\n" : "\n");
            }
            out << pad << ']';
        } else if (const auto* object = std::get_if<Object>(&value_)) {
            if (object->empty()) {
                out << "{}";
                return;
            }
            out << "{\n";
            for (std::size_t k = 0; k < object->size(); ++k) {
                out << inner;
                write_string(out, (*object)[k].first);
                out << ": ";
                (*object)[k].second.write(out, indent + 1);
                out << (k + 1 < object->size() ? ",\n" : "\n");
            }
            out << pad << '}';
        } else {
            out << "null";
        }
    }

private:
    using Array = std::vector<Json>;
    using Object = std::vector<std::pair<std::string, Json>>;

    static void write_double(std::ostream& out, double d) {
        if (d != d || d == std::numeric_limits<double>::infinity() ||
            d == -std::numeric_limits<double>::infinity()) {
            out << "null"; // JSON has no NaN/Inf
            return;
        }
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%.17g", d);
        out << buffer;
    }

    static void write_string(std::ostream& out, const std::string& s) {
        out << '"';
        for (const char c : s) {
            switch (c) {
            case '"': out << "\\\""; break;
            case '\\': out << "\\\\"; break;
            case '\n': out << "\\n"; break;
            case '\t': out << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof buffer, "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out << buffer;
                } else {
                    out << c;
                }
                break;
            }
        }
        out << '"';
    }

    std::variant<std::nullptr_t, bool, std::uint64_t, std::int64_t, double, std::string, Array,
                 Object>
        value_{nullptr};
};

class WallTimer {
public:
    [[nodiscard]] double elapsed_ms() const {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double, std::milli>(now - start_).count();
    }

private:
    std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
};

inline Json samples_json(const Samples& samples) {
    Json j = Json::object();
    j.set("count", static_cast<std::uint64_t>(samples.count()));
    j.set("mean", samples.empty() ? Json() : Json(samples.mean()));
    j.set("ci95", samples.count() > 1 ? Json(samples.ci_halfwidth()) : Json());
    j.set("min", samples.empty() ? Json() : Json(samples.min()));
    j.set("max", samples.empty() ? Json() : Json(samples.max()));
    return j;
}

inline Json config_json(const ExperimentConfig& config) {
    Json j = Json::object();
    j.set("seed", static_cast<std::uint64_t>(config.seed));
    j.set("cpu_count", static_cast<std::uint64_t>(config.cpu_count));
    j.set("gpu_count", static_cast<std::uint64_t>(config.gpu_count));
    j.set("traces", static_cast<std::uint64_t>(config.trace_count));
    j.set("requests_per_trace", static_cast<std::uint64_t>(config.trace.length));
    j.set("interarrival_mean", config.trace.interarrival_mean);
    j.set("interarrival_stddev", config.trace.interarrival_stddev);
    j.set("faults", config.fault.any());
    return j;
}

/// Serialise a metrics snapshot (DESIGN.md §10).  Host-scoped entries are
/// included — BENCH files already carry wall-clock figures — but the sim-
/// scoped ones are the comparable part across machines.
inline Json obs_metrics_json(const obs::MetricsSnapshot& snapshot) {
    Json counters = Json::object();
    for (const auto& counter : snapshot.counters)
        counters.set(counter.name, counter.value);
    Json gauges = Json::object();
    for (const auto& gauge : snapshot.gauges) gauges.set(gauge.name, gauge.value);
    Json histograms = Json::object();
    for (const auto& histogram : snapshot.histograms) {
        Json h = Json::object();
        h.set("count", histogram.count);
        h.set("sum", histogram.sum);
        Json buckets = Json::array();
        for (const std::uint64_t bucket : histogram.buckets) buckets.push(bucket);
        h.set("buckets", std::move(buckets));
        histograms.set(histogram.name, std::move(h));
    }
    Json j = Json::object();
    j.set("counters", std::move(counters));
    j.set("gauges", std::move(gauges));
    j.set("histograms", std::move(histograms));
    return j;
}

inline Json outcome_json(const RunOutcome& outcome) {
    std::uint64_t requests = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t fault_aborted = 0;
    for (const TraceResult& trace : outcome.per_trace) {
        requests += trace.requests;
        accepted += trace.accepted;
        rejected += trace.rejected;
        completed += trace.completed;
        fault_aborted += trace.fault_aborted;
    }
    Json j = Json::object();
    j.set("requests", requests);
    j.set("accepted", accepted);
    j.set("rejected", rejected);
    j.set("completed", completed);
    j.set("fault_aborted", fault_aborted);
    j.set("rejection_percent", samples_json(outcome.aggregate.rejection_percent));
    j.set("normalized_energy", samples_json(outcome.aggregate.normalized_energy));
    j.set("migrations", samples_json(outcome.aggregate.migrations));
    j.set("decision_ms_per_activation",
          samples_json(outcome.aggregate.decision_milliseconds_per_activation));
    j.set("loss_percent", samples_json(outcome.aggregate.loss_percent));
    obs::MetricsSnapshot merged;
    for (const TraceResult& trace : outcome.per_trace) merged.merge(trace.obs_metrics);
    if (!merged.empty()) j.set("obs", obs_metrics_json(merged));
    return j;
}

/// One bench's JSON artefact.  Construct at the top of main; cells append
/// as the bench runs; the file is written by flush() (also invoked by the
/// destructor, so early returns still leave an artefact behind).
class JsonReport {
public:
    explicit JsonReport(std::string id) : id_(std::move(id)) {}

    JsonReport(const JsonReport&) = delete;
    JsonReport& operator=(const JsonReport&) = delete;

    ~JsonReport() { flush(); }

    /// Record the configuration of one experiment group (benches sweeping
    /// deadline groups call this once per group).
    void add_config(const std::string& label, const ExperimentConfig& config) {
        Json j = Json::object();
        j.set("label", label);
        j.set("config", config_json(config));
        configs_.push(std::move(j));
    }

    /// Run one cell through the runner, timing it and appending its metrics.
    RunOutcome run(const ExperimentRunner& runner, const RunSpec& spec,
                   const std::string& label_prefix = "") {
        const WallTimer timer;
        RunOutcome outcome = runner.run(spec);
        add_cell(label_prefix + spec.label(), outcome, timer.elapsed_ms(), runner.jobs());
        return outcome;
    }

    /// Same with a caller-provided RM (ablation benches).
    RunOutcome run_with(const ExperimentRunner& runner, ResourceManager& rm,
                        const PredictorSpec& predictor, const std::string& label) {
        const WallTimer timer;
        RunOutcome outcome = runner.run_with(rm, predictor);
        add_cell(label, outcome, timer.elapsed_ms(), runner.jobs());
        return outcome;
    }

    /// Cell from a raw per-trace result set (benches that drive
    /// simulate_trace directly instead of going through RunSpec).
    void add_cell_results(const std::string& label, std::span<const TraceResult> results,
                          double wall_ms, std::size_t jobs) {
        RunOutcome outcome;
        outcome.per_trace.assign(results.begin(), results.end());
        outcome.aggregate = AggregateResult::over(outcome.per_trace);
        add_cell(label, outcome, wall_ms, jobs);
    }

    void add_cell(const std::string& label, const RunOutcome& outcome, double wall_ms,
                  std::size_t jobs) {
        Json j = Json::object();
        j.set("label", label);
        j.set("jobs", static_cast<std::uint64_t>(jobs));
        j.set("wall_ms", wall_ms);
        j.set("metrics", outcome_json(outcome));
        cells_.push(std::move(j));
    }

    /// Attach a bench-specific top-level field.
    void set(const std::string& key, Json value) { extra_.set(key, std::move(value)); }

    /// Time `spec` at the runner's configured job count against a fresh
    /// serial runner on the same configuration, verify the two outcomes are
    /// bit-identical (the engine's determinism contract), and record
    /// serial_ms / parallel_ms / speedup.  Trace generation happens outside
    /// the timed region in both cases.
    void record_speedup(const ExperimentRunner& runner, const RunSpec& spec) {
        const WallTimer parallel_timer;
        const RunOutcome parallel = runner.run(spec);
        const double parallel_ms = parallel_timer.elapsed_ms();

        const ExperimentRunner serial_runner(runner.config(), 1);
        const WallTimer serial_timer;
        const RunOutcome serial = serial_runner.run(spec);
        const double serial_ms = serial_timer.elapsed_ms();

        RMWP_ENSURE(serial.per_trace.size() == parallel.per_trace.size());
        for (std::size_t t = 0; t < serial.per_trace.size(); ++t)
            RMWP_ENSURE(
                equivalent_ignoring_host_time(serial.per_trace[t], parallel.per_trace[t]));

        Json j = Json::object();
        j.set("spec", spec.label());
        j.set("jobs", static_cast<std::uint64_t>(runner.jobs()));
        j.set("serial_ms", serial_ms);
        j.set("parallel_ms", parallel_ms);
        j.set("speedup", parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
        j.set("identical_results", true);
        speedup_ = std::move(j);
    }

    void flush() {
        if (flushed_) return;
        flushed_ = true;
        Json root = Json::object();
        root.set("bench", id_);
        root.set("default_jobs", static_cast<std::uint64_t>(default_jobs()));
        root.set("configs", std::move(configs_));
        root.set("cells", std::move(cells_));
        if (!speedup_.is_null()) root.set("speedup", std::move(speedup_));
        root.set("extra", std::move(extra_));
        const std::string path = "BENCH_" + id_ + ".json";
        std::ofstream out(path);
        root.write(out, 0);
        out << '\n';
        if (out) std::cout << "wrote " << path << '\n';
    }

private:
    std::string id_;
    Json configs_ = Json::array();
    Json cells_ = Json::array();
    Json speedup_;
    Json extra_ = Json::object();
    bool flushed_ = false;
};

} // namespace rmwp::bench
