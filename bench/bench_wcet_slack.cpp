// E13 (ours) — WCET pessimism and slack reclamation.
//
// The paper evaluates with execution time == WCET.  Real tasks finish
// early; this bench sweeps the actual-work fraction (uniform in
// [factor_min, 1] x WCET) and reports rejection and energy with the
// predictor on/off.  The RM keeps admitting against WCET (the firm
// guarantee requires it), while the simulator reclaims slack at every early
// completion.
#include <iostream>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/heuristic_rm.hpp"
#include "predict/oracle.hpp"
#include "predict/predictor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
    using namespace rmwp;
    using bench::scaled_config;

    const ExperimentConfig config = scaled_config(DeadlineGroup::very_tight, 25, 400);
    bench::print_header("E13", "rejection/energy vs WCET pessimism (ours)", config);
    bench::JsonReport report("wcet_slack");
    report.add_config("VT", config);
    ExperimentRunner runner(config);
    const std::size_t jobs = default_jobs();

    Table table({"actual work in", "predictor", "rejection %", "energy (J)",
                 "prediction benefit (pp)"});
    for (const double factor : {1.0, 0.9, 0.7, 0.5, 0.3}) {
        double off_rejection = 0.0;
        for (const bool predict : {false, true}) {
            const bench::WallTimer timer;
            std::vector<TraceResult> results(runner.traces().size());
            parallel_for(jobs, results.size(), [&](std::size_t t) {
                const Trace& trace = runner.traces()[t];
                HeuristicRM rm;
                SimOptions options;
                options.execution_time_factor_min = factor;
                options.execution_seed = 1000 + t;
                if (predict) {
                    OraclePredictor oracle;
                    results[t] = simulate_trace(runner.platform(), runner.catalog(), trace, rm,
                                                oracle, options);
                } else {
                    NullPredictor off;
                    results[t] = simulate_trace(runner.platform(), runner.catalog(), trace, rm,
                                                off, options);
                }
            });
            RunningStats rejection;
            RunningStats energy;
            for (const TraceResult& result : results) {
                rejection.add(result.rejection_percent());
                energy.add(result.total_energy);
            }
            report.add_cell_results("factor " + format_fixed(factor, 1) +
                                        (predict ? "/on" : "/off"),
                                    results, timer.elapsed_ms(), jobs);
            if (!predict) off_rejection = rejection.mean();
            table.row()
                .cell("[" + format_fixed(factor, 1) + ", 1.0] x WCET")
                .cell(predict ? "on" : "off")
                .cell(rejection.mean())
                .cell(energy.mean(), 0)
                .cell(predict ? format_fixed(off_rejection - rejection.mean(), 2)
                              : std::string("-"));
        }
    }
    table.print(std::cout);

    std::cout << "\nexpected shape: more WCET pessimism (smaller factor) means more\n"
                 "reclaimed slack — lower rejection and energy; the prediction benefit\n"
                 "persists because admission still reasons about worst cases.\n";
    return 0;
}
