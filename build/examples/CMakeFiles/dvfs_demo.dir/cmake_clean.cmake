file(REMOVE_RECURSE
  "CMakeFiles/dvfs_demo.dir/dvfs_demo.cpp.o"
  "CMakeFiles/dvfs_demo.dir/dvfs_demo.cpp.o.d"
  "dvfs_demo"
  "dvfs_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
