# Empty compiler generated dependencies file for dvfs_demo.
# This may be replaced when dependencies are built.
