file(REMOVE_RECURSE
  "CMakeFiles/online_predictor_demo.dir/online_predictor_demo.cpp.o"
  "CMakeFiles/online_predictor_demo.dir/online_predictor_demo.cpp.o.d"
  "online_predictor_demo"
  "online_predictor_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_predictor_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
