# Empty dependencies file for online_predictor_demo.
# This may be replaced when dependencies are built.
