# Empty dependencies file for motivational_example.
# This may be replaced when dependencies are built.
