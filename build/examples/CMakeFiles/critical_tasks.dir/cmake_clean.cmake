file(REMOVE_RECURSE
  "CMakeFiles/critical_tasks.dir/critical_tasks.cpp.o"
  "CMakeFiles/critical_tasks.dir/critical_tasks.cpp.o.d"
  "critical_tasks"
  "critical_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critical_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
