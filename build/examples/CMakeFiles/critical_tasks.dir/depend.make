# Empty dependencies file for critical_tasks.
# This may be replaced when dependencies are built.
