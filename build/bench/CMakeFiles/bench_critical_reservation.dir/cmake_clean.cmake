file(REMOVE_RECURSE
  "CMakeFiles/bench_critical_reservation.dir/bench_critical_reservation.cpp.o"
  "CMakeFiles/bench_critical_reservation.dir/bench_critical_reservation.cpp.o.d"
  "bench_critical_reservation"
  "bench_critical_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_critical_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
