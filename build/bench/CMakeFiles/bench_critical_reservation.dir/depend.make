# Empty dependencies file for bench_critical_reservation.
# This may be replaced when dependencies are built.
