file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_latency.dir/bench_micro_latency.cpp.o"
  "CMakeFiles/bench_micro_latency.dir/bench_micro_latency.cpp.o.d"
  "bench_micro_latency"
  "bench_micro_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
