# Empty compiler generated dependencies file for bench_micro_latency.
# This may be replaced when dependencies are built.
