# Empty compiler generated dependencies file for bench_wcet_slack.
# This may be replaced when dependencies are built.
