file(REMOVE_RECURSE
  "CMakeFiles/bench_wcet_slack.dir/bench_wcet_slack.cpp.o"
  "CMakeFiles/bench_wcet_slack.dir/bench_wcet_slack.cpp.o.d"
  "bench_wcet_slack"
  "bench_wcet_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wcet_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
