file(REMOVE_RECURSE
  "CMakeFiles/bench_lookahead.dir/bench_lookahead.cpp.o"
  "CMakeFiles/bench_lookahead.dir/bench_lookahead.cpp.o.d"
  "bench_lookahead"
  "bench_lookahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
