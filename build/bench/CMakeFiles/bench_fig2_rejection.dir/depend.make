# Empty dependencies file for bench_fig2_rejection.
# This may be replaced when dependencies are built.
