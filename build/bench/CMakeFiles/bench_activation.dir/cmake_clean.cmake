file(REMOVE_RECURSE
  "CMakeFiles/bench_activation.dir/bench_activation.cpp.o"
  "CMakeFiles/bench_activation.dir/bench_activation.cpp.o.d"
  "bench_activation"
  "bench_activation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_activation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
