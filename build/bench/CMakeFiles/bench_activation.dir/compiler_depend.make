# Empty compiler generated dependencies file for bench_activation.
# This may be replaced when dependencies are built.
