# Empty dependencies file for bench_sec52_exact_vs_heuristic.
# This may be replaced when dependencies are built.
