
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline_rm.cpp" "src/core/CMakeFiles/rmwp_core.dir/baseline_rm.cpp.o" "gcc" "src/core/CMakeFiles/rmwp_core.dir/baseline_rm.cpp.o.d"
  "/root/repo/src/core/edf.cpp" "src/core/CMakeFiles/rmwp_core.dir/edf.cpp.o" "gcc" "src/core/CMakeFiles/rmwp_core.dir/edf.cpp.o.d"
  "/root/repo/src/core/exact_rm.cpp" "src/core/CMakeFiles/rmwp_core.dir/exact_rm.cpp.o" "gcc" "src/core/CMakeFiles/rmwp_core.dir/exact_rm.cpp.o.d"
  "/root/repo/src/core/heuristic_rm.cpp" "src/core/CMakeFiles/rmwp_core.dir/heuristic_rm.cpp.o" "gcc" "src/core/CMakeFiles/rmwp_core.dir/heuristic_rm.cpp.o.d"
  "/root/repo/src/core/manager.cpp" "src/core/CMakeFiles/rmwp_core.dir/manager.cpp.o" "gcc" "src/core/CMakeFiles/rmwp_core.dir/manager.cpp.o.d"
  "/root/repo/src/core/milp_rm.cpp" "src/core/CMakeFiles/rmwp_core.dir/milp_rm.cpp.o" "gcc" "src/core/CMakeFiles/rmwp_core.dir/milp_rm.cpp.o.d"
  "/root/repo/src/core/plan_instance.cpp" "src/core/CMakeFiles/rmwp_core.dir/plan_instance.cpp.o" "gcc" "src/core/CMakeFiles/rmwp_core.dir/plan_instance.cpp.o.d"
  "/root/repo/src/core/reservation.cpp" "src/core/CMakeFiles/rmwp_core.dir/reservation.cpp.o" "gcc" "src/core/CMakeFiles/rmwp_core.dir/reservation.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/rmwp_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/rmwp_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/task_state.cpp" "src/core/CMakeFiles/rmwp_core.dir/task_state.cpp.o" "gcc" "src/core/CMakeFiles/rmwp_core.dir/task_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/rmwp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/rmwp_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rmwp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/rmwp_milp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
