# Empty dependencies file for rmwp_core.
# This may be replaced when dependencies are built.
