file(REMOVE_RECURSE
  "librmwp_core.a"
)
