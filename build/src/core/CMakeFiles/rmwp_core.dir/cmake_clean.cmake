file(REMOVE_RECURSE
  "CMakeFiles/rmwp_core.dir/baseline_rm.cpp.o"
  "CMakeFiles/rmwp_core.dir/baseline_rm.cpp.o.d"
  "CMakeFiles/rmwp_core.dir/edf.cpp.o"
  "CMakeFiles/rmwp_core.dir/edf.cpp.o.d"
  "CMakeFiles/rmwp_core.dir/exact_rm.cpp.o"
  "CMakeFiles/rmwp_core.dir/exact_rm.cpp.o.d"
  "CMakeFiles/rmwp_core.dir/heuristic_rm.cpp.o"
  "CMakeFiles/rmwp_core.dir/heuristic_rm.cpp.o.d"
  "CMakeFiles/rmwp_core.dir/manager.cpp.o"
  "CMakeFiles/rmwp_core.dir/manager.cpp.o.d"
  "CMakeFiles/rmwp_core.dir/milp_rm.cpp.o"
  "CMakeFiles/rmwp_core.dir/milp_rm.cpp.o.d"
  "CMakeFiles/rmwp_core.dir/plan_instance.cpp.o"
  "CMakeFiles/rmwp_core.dir/plan_instance.cpp.o.d"
  "CMakeFiles/rmwp_core.dir/reservation.cpp.o"
  "CMakeFiles/rmwp_core.dir/reservation.cpp.o.d"
  "CMakeFiles/rmwp_core.dir/schedule.cpp.o"
  "CMakeFiles/rmwp_core.dir/schedule.cpp.o.d"
  "CMakeFiles/rmwp_core.dir/task_state.cpp.o"
  "CMakeFiles/rmwp_core.dir/task_state.cpp.o.d"
  "librmwp_core.a"
  "librmwp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmwp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
