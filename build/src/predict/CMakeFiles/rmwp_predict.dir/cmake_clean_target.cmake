file(REMOVE_RECURSE
  "librmwp_predict.a"
)
