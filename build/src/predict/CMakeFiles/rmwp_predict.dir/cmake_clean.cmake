file(REMOVE_RECURSE
  "CMakeFiles/rmwp_predict.dir/noisy.cpp.o"
  "CMakeFiles/rmwp_predict.dir/noisy.cpp.o.d"
  "CMakeFiles/rmwp_predict.dir/online.cpp.o"
  "CMakeFiles/rmwp_predict.dir/online.cpp.o.d"
  "CMakeFiles/rmwp_predict.dir/oracle.cpp.o"
  "CMakeFiles/rmwp_predict.dir/oracle.cpp.o.d"
  "CMakeFiles/rmwp_predict.dir/predictor.cpp.o"
  "CMakeFiles/rmwp_predict.dir/predictor.cpp.o.d"
  "librmwp_predict.a"
  "librmwp_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmwp_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
