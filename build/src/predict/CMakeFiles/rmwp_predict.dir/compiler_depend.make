# Empty compiler generated dependencies file for rmwp_predict.
# This may be replaced when dependencies are built.
