
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/noisy.cpp" "src/predict/CMakeFiles/rmwp_predict.dir/noisy.cpp.o" "gcc" "src/predict/CMakeFiles/rmwp_predict.dir/noisy.cpp.o.d"
  "/root/repo/src/predict/online.cpp" "src/predict/CMakeFiles/rmwp_predict.dir/online.cpp.o" "gcc" "src/predict/CMakeFiles/rmwp_predict.dir/online.cpp.o.d"
  "/root/repo/src/predict/oracle.cpp" "src/predict/CMakeFiles/rmwp_predict.dir/oracle.cpp.o" "gcc" "src/predict/CMakeFiles/rmwp_predict.dir/oracle.cpp.o.d"
  "/root/repo/src/predict/predictor.cpp" "src/predict/CMakeFiles/rmwp_predict.dir/predictor.cpp.o" "gcc" "src/predict/CMakeFiles/rmwp_predict.dir/predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rmwp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rmwp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rmwp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/rmwp_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/rmwp_milp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
