file(REMOVE_RECURSE
  "CMakeFiles/rmwp_milp.dir/lp.cpp.o"
  "CMakeFiles/rmwp_milp.dir/lp.cpp.o.d"
  "CMakeFiles/rmwp_milp.dir/milp.cpp.o"
  "CMakeFiles/rmwp_milp.dir/milp.cpp.o.d"
  "CMakeFiles/rmwp_milp.dir/simplex.cpp.o"
  "CMakeFiles/rmwp_milp.dir/simplex.cpp.o.d"
  "librmwp_milp.a"
  "librmwp_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmwp_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
