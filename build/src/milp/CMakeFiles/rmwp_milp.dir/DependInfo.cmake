
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/milp/lp.cpp" "src/milp/CMakeFiles/rmwp_milp.dir/lp.cpp.o" "gcc" "src/milp/CMakeFiles/rmwp_milp.dir/lp.cpp.o.d"
  "/root/repo/src/milp/milp.cpp" "src/milp/CMakeFiles/rmwp_milp.dir/milp.cpp.o" "gcc" "src/milp/CMakeFiles/rmwp_milp.dir/milp.cpp.o.d"
  "/root/repo/src/milp/simplex.cpp" "src/milp/CMakeFiles/rmwp_milp.dir/simplex.cpp.o" "gcc" "src/milp/CMakeFiles/rmwp_milp.dir/simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rmwp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
