file(REMOVE_RECURSE
  "librmwp_milp.a"
)
