# Empty compiler generated dependencies file for rmwp_milp.
# This may be replaced when dependencies are built.
