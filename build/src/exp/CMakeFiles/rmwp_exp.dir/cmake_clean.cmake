file(REMOVE_RECURSE
  "CMakeFiles/rmwp_exp.dir/config.cpp.o"
  "CMakeFiles/rmwp_exp.dir/config.cpp.o.d"
  "CMakeFiles/rmwp_exp.dir/runner.cpp.o"
  "CMakeFiles/rmwp_exp.dir/runner.cpp.o.d"
  "librmwp_exp.a"
  "librmwp_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmwp_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
