# Empty compiler generated dependencies file for rmwp_exp.
# This may be replaced when dependencies are built.
