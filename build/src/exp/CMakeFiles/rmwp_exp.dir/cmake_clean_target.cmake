file(REMOVE_RECURSE
  "librmwp_exp.a"
)
