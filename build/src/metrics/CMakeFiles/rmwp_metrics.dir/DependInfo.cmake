
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/aggregate.cpp" "src/metrics/CMakeFiles/rmwp_metrics.dir/aggregate.cpp.o" "gcc" "src/metrics/CMakeFiles/rmwp_metrics.dir/aggregate.cpp.o.d"
  "/root/repo/src/metrics/trace_result.cpp" "src/metrics/CMakeFiles/rmwp_metrics.dir/trace_result.cpp.o" "gcc" "src/metrics/CMakeFiles/rmwp_metrics.dir/trace_result.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rmwp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rmwp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/rmwp_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
