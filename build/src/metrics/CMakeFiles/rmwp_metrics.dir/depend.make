# Empty dependencies file for rmwp_metrics.
# This may be replaced when dependencies are built.
