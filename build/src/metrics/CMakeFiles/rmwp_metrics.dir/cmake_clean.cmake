file(REMOVE_RECURSE
  "CMakeFiles/rmwp_metrics.dir/aggregate.cpp.o"
  "CMakeFiles/rmwp_metrics.dir/aggregate.cpp.o.d"
  "CMakeFiles/rmwp_metrics.dir/trace_result.cpp.o"
  "CMakeFiles/rmwp_metrics.dir/trace_result.cpp.o.d"
  "librmwp_metrics.a"
  "librmwp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmwp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
