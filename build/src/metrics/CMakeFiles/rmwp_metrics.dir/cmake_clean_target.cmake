file(REMOVE_RECURSE
  "librmwp_metrics.a"
)
