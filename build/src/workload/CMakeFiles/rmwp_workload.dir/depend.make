# Empty dependencies file for rmwp_workload.
# This may be replaced when dependencies are built.
