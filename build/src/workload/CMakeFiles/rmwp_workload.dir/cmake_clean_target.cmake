file(REMOVE_RECURSE
  "librmwp_workload.a"
)
