file(REMOVE_RECURSE
  "CMakeFiles/rmwp_workload.dir/catalog.cpp.o"
  "CMakeFiles/rmwp_workload.dir/catalog.cpp.o.d"
  "CMakeFiles/rmwp_workload.dir/task_type.cpp.o"
  "CMakeFiles/rmwp_workload.dir/task_type.cpp.o.d"
  "CMakeFiles/rmwp_workload.dir/trace.cpp.o"
  "CMakeFiles/rmwp_workload.dir/trace.cpp.o.d"
  "CMakeFiles/rmwp_workload.dir/trace_generator.cpp.o"
  "CMakeFiles/rmwp_workload.dir/trace_generator.cpp.o.d"
  "CMakeFiles/rmwp_workload.dir/trace_io.cpp.o"
  "CMakeFiles/rmwp_workload.dir/trace_io.cpp.o.d"
  "librmwp_workload.a"
  "librmwp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmwp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
