# Empty compiler generated dependencies file for rmwp_platform.
# This may be replaced when dependencies are built.
