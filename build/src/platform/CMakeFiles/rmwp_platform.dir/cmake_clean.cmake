file(REMOVE_RECURSE
  "CMakeFiles/rmwp_platform.dir/platform.cpp.o"
  "CMakeFiles/rmwp_platform.dir/platform.cpp.o.d"
  "CMakeFiles/rmwp_platform.dir/resource.cpp.o"
  "CMakeFiles/rmwp_platform.dir/resource.cpp.o.d"
  "librmwp_platform.a"
  "librmwp_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmwp_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
