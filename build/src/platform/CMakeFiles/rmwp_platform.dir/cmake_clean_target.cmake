file(REMOVE_RECURSE
  "librmwp_platform.a"
)
