# Empty dependencies file for rmwp_sim.
# This may be replaced when dependencies are built.
