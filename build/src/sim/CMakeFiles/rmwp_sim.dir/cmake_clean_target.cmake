file(REMOVE_RECURSE
  "librmwp_sim.a"
)
