file(REMOVE_RECURSE
  "CMakeFiles/rmwp_sim.dir/event_queue.cpp.o"
  "CMakeFiles/rmwp_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/rmwp_sim.dir/simulator.cpp.o"
  "CMakeFiles/rmwp_sim.dir/simulator.cpp.o.d"
  "librmwp_sim.a"
  "librmwp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmwp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
