file(REMOVE_RECURSE
  "librmwp_util.a"
)
