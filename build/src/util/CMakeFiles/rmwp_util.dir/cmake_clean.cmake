file(REMOVE_RECURSE
  "CMakeFiles/rmwp_util.dir/rng.cpp.o"
  "CMakeFiles/rmwp_util.dir/rng.cpp.o.d"
  "CMakeFiles/rmwp_util.dir/stats.cpp.o"
  "CMakeFiles/rmwp_util.dir/stats.cpp.o.d"
  "CMakeFiles/rmwp_util.dir/table.cpp.o"
  "CMakeFiles/rmwp_util.dir/table.cpp.o.d"
  "librmwp_util.a"
  "librmwp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmwp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
