# Empty dependencies file for rmwp_util.
# This may be replaced when dependencies are built.
