
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/test_simulator.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/test_simulator.dir/test_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/rmwp_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rmwp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rmwp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/rmwp_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/rmwp_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rmwp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/rmwp_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rmwp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rmwp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
