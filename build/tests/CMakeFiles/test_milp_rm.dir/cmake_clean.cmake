file(REMOVE_RECURSE
  "CMakeFiles/test_milp_rm.dir/test_milp_rm.cpp.o"
  "CMakeFiles/test_milp_rm.dir/test_milp_rm.cpp.o.d"
  "test_milp_rm"
  "test_milp_rm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_milp_rm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
