# Empty dependencies file for test_milp_rm.
# This may be replaced when dependencies are built.
