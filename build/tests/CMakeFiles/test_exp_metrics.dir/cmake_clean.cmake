file(REMOVE_RECURSE
  "CMakeFiles/test_exp_metrics.dir/test_exp_metrics.cpp.o"
  "CMakeFiles/test_exp_metrics.dir/test_exp_metrics.cpp.o.d"
  "test_exp_metrics"
  "test_exp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
