file(REMOVE_RECURSE
  "CMakeFiles/test_core_rm.dir/test_core_rm.cpp.o"
  "CMakeFiles/test_core_rm.dir/test_core_rm.cpp.o.d"
  "test_core_rm"
  "test_core_rm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_rm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
