file(REMOVE_RECURSE
  "CMakeFiles/test_integration_chaos.dir/test_integration_chaos.cpp.o"
  "CMakeFiles/test_integration_chaos.dir/test_integration_chaos.cpp.o.d"
  "test_integration_chaos"
  "test_integration_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
