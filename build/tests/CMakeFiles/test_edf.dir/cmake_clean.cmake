file(REMOVE_RECURSE
  "CMakeFiles/test_edf.dir/test_edf.cpp.o"
  "CMakeFiles/test_edf.dir/test_edf.cpp.o.d"
  "test_edf"
  "test_edf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
