# Empty dependencies file for test_edf.
# This may be replaced when dependencies are built.
