file(REMOVE_RECURSE
  "CMakeFiles/test_execution_variation.dir/test_execution_variation.cpp.o"
  "CMakeFiles/test_execution_variation.dir/test_execution_variation.cpp.o.d"
  "test_execution_variation"
  "test_execution_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_execution_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
