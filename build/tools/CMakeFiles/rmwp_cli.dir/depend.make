# Empty dependencies file for rmwp_cli.
# This may be replaced when dependencies are built.
