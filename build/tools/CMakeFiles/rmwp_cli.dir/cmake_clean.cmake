file(REMOVE_RECURSE
  "CMakeFiles/rmwp_cli.dir/rmwp_cli.cpp.o"
  "CMakeFiles/rmwp_cli.dir/rmwp_cli.cpp.o.d"
  "rmwp_cli"
  "rmwp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmwp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
