// Rule table for rmwp-analyze (DESIGN.md §12): everything repo-specific —
// which identifiers count as wall clocks or entropy, which modules are
// deterministic, the src/ layering DAG, and the per-rule allowlists —
// lives here so the checks in analyze.cpp stay mechanical.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace rmwp::analyze {

/// Rule identifiers.  R0 is the meta-rule (waiver hygiene) and cannot be
/// waived; R1–R5 are the determinism/layering rules from DESIGN.md §12.
inline const std::vector<std::pair<std::string, std::string>>& rule_table() {
    static const std::vector<std::pair<std::string, std::string>> rules = {
        {"R0", "waiver hygiene: RMWP_LINT_ALLOW must be well-formed, reasoned, and used"},
        {"R1", "wall-clock reads only in host-time modules"},
        {"R2", "ambient entropy (rand/random_device/getenv) only in seed plumbing"},
        {"R3", "no iteration over unordered containers in deterministic modules"},
        {"R4", "module layering: #include edges must follow the src/ DAG"},
        {"R5", "mutating src/core entry points must carry RMWP_EXPECT/RMWP_ENSURE"},
    };
    return rules;
}

/// Identifiers that read a wall clock (R1).
const std::set<std::string>& clock_identifiers();

/// Identifiers that draw ambient entropy (R2).  `rand` additionally
/// requires a following "(" so `rand_state`-style names stay legal.
const std::set<std::string>& entropy_identifiers();

/// src/ modules whose outputs feed bit-identity invariants (R3 scope):
/// iteration order of hashed containers must never reach their results.
const std::set<std::string>& deterministic_modules();

/// Allowed #include edges between src/ modules, as a transitive closure of
/// the architecture DAG in src/CMakeLists.txt.  closure.at(m) is the set of
/// modules m may include (m itself is always allowed).
const std::map<std::string, std::set<std::string>>& layering_closure();

/// True when `canonical` (path from its src/bench/tests/tools marker, e.g.
/// "src/serve/monitor.cpp") is allowlisted for the given rule — the file
/// may use the construct without a waiver.  Kept deliberately short: the
/// allowlist is for whole modules whose *purpose* is host time; individual
/// call sites elsewhere use RMWP_LINT_ALLOW so they show up in the waiver
/// inventory.
bool allowlisted(const std::string& rule, const std::string& canonical);

/// Minimum body length (in lines) before R5 demands a contract: shorter
/// mutators are trivially auditable by eye.
inline constexpr int kContractBodyLines = 5;

} // namespace rmwp::analyze
