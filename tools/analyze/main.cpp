// rmwp-analyze CLI (DESIGN.md §12).
//
//   rmwp-analyze [--compdb FILE] [--waivers] [--list-rules] PATH...
//
// PATHs are files or directories (directories are walked for C++ sources,
// skipping build*/hidden/fixtures dirs).  Prints one `file:line: [R#]
// message` per unwaived finding.  Exit 0 when clean, 1 on unwaived
// findings, 2 on usage errors.
#include <cstring>
#include <iostream>

#include "analyze.hpp"
#include "rules.hpp"

namespace {

int usage(std::ostream& os, int code) {
    os << "usage: rmwp-analyze [--compdb FILE] [--waivers] [--list-rules] PATH...\n"
          "  --compdb FILE  add translation units from a compile_commands.json\n"
          "  --waivers      print the RMWP_LINT_ALLOW inventory after the summary\n"
          "  --list-rules   print the rule table and exit\n";
    return code;
}

} // namespace

int main(int argc, char** argv) {
    rmwp::analyze::Options options;
    bool print_waivers = false;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0)
            return usage(std::cout, 0);
        if (std::strcmp(arg, "--list-rules") == 0) {
            for (const auto& [id, summary] : rmwp::analyze::rule_table())
                std::cout << id << "  " << summary << "\n";
            return 0;
        }
        if (std::strcmp(arg, "--waivers") == 0) {
            print_waivers = true;
            continue;
        }
        if (std::strcmp(arg, "--compdb") == 0) {
            if (++i >= argc) return usage(std::cerr, 2);
            options.compdb = argv[i];
            continue;
        }
        if (arg[0] == '-') {
            std::cerr << "rmwp-analyze: unknown option '" << arg << "'\n";
            return usage(std::cerr, 2);
        }
        options.paths.push_back(arg);
    }
    if (options.paths.empty()) return usage(std::cerr, 2);

    const rmwp::analyze::Report report = rmwp::analyze::analyze(options);
    for (const rmwp::analyze::Finding& finding : report.findings)
        if (!finding.waived) std::cout << rmwp::analyze::render(finding) << "\n";

    std::size_t used_waivers = 0;
    for (const rmwp::analyze::WaiverRecord& waiver : report.waivers)
        if (waiver.used) ++used_waivers;
    std::cout << "rmwp-analyze: " << report.files_scanned << " files, "
              << report.findings.size() << " findings (" << report.unwaived()
              << " unwaived), " << used_waivers << " waivers\n";

    if (print_waivers && used_waivers > 0) {
        std::cout << "waiver inventory (every intentional nondeterminism):\n";
        for (const rmwp::analyze::WaiverRecord& waiver : report.waivers) {
            if (!waiver.used) continue;
            std::cout << "  " << waiver.path << ":" << waiver.line << ": [" << waiver.rules
                      << "] " << waiver.reason << "\n";
        }
    }
    return report.unwaived() == 0 ? 0 : 1;
}
