#include "analyze.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "lexer.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace rmwp::analyze {
namespace {

const std::set<std::string>& area_markers() {
    static const std::set<std::string> markers = {"src", "bench", "tests", "tools", "examples"};
    return markers;
}

std::vector<std::string> path_components(const std::string& path) {
    std::vector<std::string> out;
    for (const auto& part : fs::path(path))
        if (part != "/" && !part.empty()) out.push_back(part.string());
    return out;
}

/// Everything the per-file checks need to know about one file.
struct FileScan {
    std::string path;      ///< as given by the caller
    std::string canonical; ///< from the last area marker: "src/core/edf.cpp"
    std::string area;      ///< "src", "bench", "tests", "tools", "examples"
    std::string module;    ///< second canonical component when area == "src"
    LexResult lex;
};

bool is_ident(const Token& token, const char* text) {
    return token.kind == TokenKind::identifier && token.text == text;
}

// ---------------------------------------------------------------------------
// R3 support: names declared with an unordered container type.

/// Skip a balanced template argument list; `i` points at '<'.  Returns the
/// index just past the matching '>', or `tokens.size()` when unbalanced.
std::size_t skip_template_args(const std::vector<Token>& tokens, std::size_t i) {
    int depth = 0;
    for (; i < tokens.size(); ++i) {
        if (tokens[i].text == "<") ++depth;
        if (tokens[i].text == ">" && --depth == 0) return i + 1;
        if (tokens[i].text == ";") break; // not a template arg list after all
    }
    return tokens.size();
}

/// Collect declarator names of `std::unordered_map</...>` / `unordered_set`
/// variables, members, and parameters.  Purely syntactic: the name right
/// after the closing '>' (and any */&/const) is taken unless it opens a
/// function or names a nested type.
void collect_unordered_names(const std::vector<Token>& tokens, std::set<std::string>& names) {
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (!is_ident(tokens[i], "unordered_map") && !is_ident(tokens[i], "unordered_set"))
            continue;
        std::size_t j = i + 1;
        if (j >= tokens.size() || tokens[j].text != "<") continue;
        j = skip_template_args(tokens, j);
        while (j < tokens.size() &&
               (tokens[j].text == "*" || tokens[j].text == "&" || is_ident(tokens[j], "const")))
            ++j;
        if (j >= tokens.size() || tokens[j].kind != TokenKind::identifier) continue;
        if (tokens[j].text == "iterator" || tokens[j].text == "const_iterator") continue;
        if (j + 1 < tokens.size() &&
            (tokens[j + 1].text == "(" || tokens[j + 1].text == "::"))
            continue; // function returning one, or nested-type usage
        names.insert(tokens[j].text);
    }
}

// ---------------------------------------------------------------------------
// Per-file checks.  Each appends raw findings; waiver resolution runs later.

void check_clocks(const FileScan& scan, std::vector<Finding>& findings) {
    if (allowlisted("R1", scan.canonical)) return;
    const auto& tokens = scan.lex.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& token = tokens[i];
        if (token.kind != TokenKind::identifier) continue;
        if (clock_identifiers().contains(token.text)) {
            findings.push_back({scan.path, token.line, "R1",
                                "wall-clock read '" + token.text +
                                    "' outside the host-time allowlist", false, {}});
            continue;
        }
        // std::time(...) / ::time(...) — bare `time` is a common variable
        // name in a simulator, so require the qualification.
        if (token.text == "time" && i >= 1 && tokens[i - 1].text == "::" &&
            i + 1 < tokens.size() && tokens[i + 1].text == "(" &&
            (i < 2 || tokens[i - 2].kind != TokenKind::identifier ||
             tokens[i - 2].text == "std")) {
            findings.push_back({scan.path, token.line, "R1",
                                "wall-clock read 'std::time' outside the host-time allowlist",
                                false, {}});
        }
    }
}

void check_entropy(const FileScan& scan, std::vector<Finding>& findings) {
    if (allowlisted("R2", scan.canonical)) return;
    const auto& tokens = scan.lex.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& token = tokens[i];
        if (token.kind != TokenKind::identifier) continue;
        if (entropy_identifiers().contains(token.text)) {
            findings.push_back({scan.path, token.line, "R2",
                                "ambient entropy '" + token.text +
                                    "' outside seed plumbing", false, {}});
            continue;
        }
        if (token.text == "rand" && i + 1 < tokens.size() && tokens[i + 1].text == "(" &&
            (i == 0 || (tokens[i - 1].text != "->" && tokens[i - 1].text != "."))) {
            findings.push_back({scan.path, token.line, "R2",
                                "ambient entropy 'rand()' outside seed plumbing", false, {}});
        }
    }
}

void check_unordered_iteration(const FileScan& scan, const std::set<std::string>& global_names,
                               std::vector<Finding>& findings) {
    if (scan.area != "src" || !deterministic_modules().contains(scan.module)) return;
    std::set<std::string> names = global_names;
    collect_unordered_names(scan.lex.tokens, names);
    if (names.empty()) return;

    const auto& tokens = scan.lex.tokens;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (!is_ident(tokens[i], "for") || tokens[i + 1].text != "(") continue;
        // Bound the for-header: tokens between '(' and its matching ')'.
        int depth = 0;
        std::size_t close = i + 1;
        for (; close < tokens.size(); ++close) {
            if (tokens[close].text == "(") ++depth;
            if (tokens[close].text == ")" && --depth == 0) break;
        }
        if (close >= tokens.size()) break;
        // Range-for: a ':' at paren depth 1 ("::" is a fused token, so a
        // bare ':' here is the range separator).
        std::size_t colon = 0;
        depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
            if (tokens[j].text == "(") ++depth;
            if (tokens[j].text == ")") --depth;
            if (tokens[j].text == ":" && depth == 1) {
                colon = j;
                break;
            }
        }
        const std::size_t begin = (colon != 0) ? colon + 1 : i + 2;
        for (std::size_t j = begin; j < close; ++j) {
            if (tokens[j].kind != TokenKind::identifier || !names.contains(tokens[j].text))
                continue;
            // Explicit iterator loops only count via NAME.begin()/cbegin().
            const bool iterator_loop =
                colon == 0 && j + 2 < close && tokens[j + 1].text == "." &&
                (tokens[j + 2].text == "begin" || tokens[j + 2].text == "cbegin");
            if (colon == 0 && !iterator_loop) continue;
            findings.push_back({scan.path, tokens[i].line, "R3",
                                "iteration over unordered container '" + tokens[j].text +
                                    "' in deterministic module '" + scan.module +
                                    "' (order can leak into results; iterate a sorted copy)",
                                false, {}});
            break;
        }
        i = close;
    }
}

void check_layering(const FileScan& scan, std::vector<Finding>& findings) {
    if (scan.area != "src" || scan.module.empty()) return;
    const auto closure = layering_closure().find(scan.module);
    if (closure == layering_closure().end()) return; // unknown module: no DAG yet
    for (const IncludeDirective& include : scan.lex.includes) {
        const std::size_t slash = include.path.find('/');
        if (slash == std::string::npos) continue;
        const std::string target = include.path.substr(0, slash);
        if (target == scan.module || !layering_closure().contains(target)) continue;
        if (!closure->second.contains(target)) {
            findings.push_back({scan.path, include.line, "R4",
                                "layering violation: module '" + scan.module +
                                    "' must not include '" + include.path + "' ('" +
                                    scan.module + "' -> '" + target +
                                    "' is not an edge of the src/ DAG)", false, {}});
        }
    }
}

/// Walk past a candidate member-function definition.  `open` indexes the
/// body '{'.  Appends an R5 finding when the body is long enough to demand
/// a contract but carries none.  Returns the index of the body's '}'.
std::size_t scan_function_body(const FileScan& scan, std::size_t open, int def_line,
                               const std::string& qualified, std::vector<Finding>& findings) {
    const auto& tokens = scan.lex.tokens;
    int depth = 0;
    bool has_contract = false;
    std::size_t j = open;
    for (; j < tokens.size(); ++j) {
        if (tokens[j].text == "{") ++depth;
        if (tokens[j].text == "}" && --depth == 0) break;
        if (tokens[j].kind == TokenKind::identifier &&
            (tokens[j].text == "RMWP_EXPECT" || tokens[j].text == "RMWP_ENSURE"))
            has_contract = true;
    }
    const int body_lines = (j < tokens.size() ? tokens[j].line : tokens.back().line) -
                           tokens[open].line - 1;
    if (!has_contract && body_lines >= kContractBodyLines) {
        findings.push_back({scan.path, def_line, "R5",
                            "mutating entry point '" + qualified + "' (" +
                                std::to_string(body_lines) +
                                " body lines) has no RMWP_EXPECT/RMWP_ENSURE contract",
                            false, {}});
    }
    return j;
}

void check_contracts(const FileScan& scan, std::vector<Finding>& findings) {
    if (scan.canonical.rfind("src/core/", 0) != 0 || !scan.canonical.ends_with(".cpp")) return;
    const auto& tokens = scan.lex.tokens;
    // Effective depth ignores namespace braces so out-of-line member
    // definitions inside `namespace rmwp {` still sit at depth 0.
    std::vector<bool> brace_is_namespace;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const std::string& text = tokens[i].text;
        if (text == "{") {
            const bool ns =
                (i >= 1 && is_ident(tokens[i - 1], "namespace")) ||
                (i >= 2 && tokens[i - 1].kind == TokenKind::identifier &&
                 is_ident(tokens[i - 2], "namespace"));
            brace_is_namespace.push_back(ns);
            continue;
        }
        if (text == "}") {
            if (!brace_is_namespace.empty()) brace_is_namespace.pop_back();
            continue;
        }
        const bool at_top = std::none_of(brace_is_namespace.begin(), brace_is_namespace.end(),
                                         [](bool ns) { return !ns; });
        if (!at_top) continue;
        // Candidate: ident "::" ident "(" — an out-of-line member definition.
        if (tokens[i].kind != TokenKind::identifier || i + 3 >= tokens.size() ||
            tokens[i + 1].text != "::" || tokens[i + 2].kind != TokenKind::identifier ||
            tokens[i + 3].text != "(")
            continue;
        const std::string& cls = tokens[i].text;
        const std::string& name = tokens[i + 2].text;
        if (name == cls || name == "operator") continue; // ctor / operator overload
        // Find the parameter list's ')'.
        int depth = 0;
        std::size_t j = i + 3;
        for (; j < tokens.size(); ++j) {
            if (tokens[j].text == "(") ++depth;
            if (tokens[j].text == ")" && --depth == 0) break;
        }
        if (j >= tokens.size()) break;
        // Signature tail: `;` means declaration, `const` means non-mutating.
        bool is_const = false;
        std::size_t open = tokens.size();
        for (++j; j < tokens.size(); ++j) {
            if (tokens[j].text == ";") break;
            if (is_ident(tokens[j], "const")) is_const = true;
            if (tokens[j].text == "{") {
                open = j;
                break;
            }
        }
        if (open == tokens.size() || is_const) {
            i = (j < tokens.size()) ? j : i + 3;
            continue;
        }
        i = scan_function_body(scan, open, tokens[i].line, cls + "::" + name, findings);
    }
}

// ---------------------------------------------------------------------------
// Waiver resolution.

void resolve_waivers(FileScan& scan, std::vector<Finding>& findings, Report& report) {
    auto& waivers = scan.lex.waivers;
    std::map<int, std::vector<std::size_t>> by_line;
    std::vector<bool> used(waivers.size(), false);
    for (std::size_t w = 0; w < waivers.size(); ++w) by_line[waivers[w].line].push_back(w);

    auto try_waive = [&](Finding& finding, int line, bool need_own_line) {
        const auto it = by_line.find(line);
        if (it == by_line.end()) return false;
        bool saw_waiver_line = false;
        for (const std::size_t w : it->second) {
            const WaiverComment& waiver = waivers[w];
            if (waiver.malformed || (need_own_line && !waiver.own_line)) continue;
            saw_waiver_line = true;
            for (const std::string& rule : waiver.rules) {
                if (rule != finding.rule) continue;
                finding.waived = true;
                finding.waiver_reason = waiver.reason;
                used[w] = true;
                return true;
            }
        }
        return saw_waiver_line; // a waiver line for another rule still chains upward
    };

    for (Finding& finding : findings) {
        if (finding.rule == "R0") continue; // hygiene findings are unwaivable
        if (try_waive(finding, finding.line, /*need_own_line=*/false) && finding.waived)
            continue;
        // Walk up through a block of own-line waiver comments above.
        for (int line = finding.line - 1; line >= 1; --line) {
            if (!try_waive(finding, line, /*need_own_line=*/true)) break;
            if (finding.waived) break;
        }
    }

    for (std::size_t w = 0; w < waivers.size(); ++w) {
        const WaiverComment& waiver = waivers[w];
        if (waiver.malformed) {
            findings.push_back({scan.path, waiver.line, "R0",
                                "malformed waiver: expected "
                                "'// RMWP_LINT_ALLOW(R#[,R#...]): reason'", false, {}});
            continue;
        }
        std::string joined;
        for (const std::string& rule : waiver.rules)
            joined += (joined.empty() ? "" : ",") + rule;
        if (!used[w]) {
            findings.push_back({scan.path, waiver.line, "R0",
                                "unused waiver for " + joined +
                                    " (no matching finding; delete it)", false, {}});
        }
        report.waivers.push_back({scan.path, waiver.line, joined, waiver.reason, used[w]});
    }
}

// ---------------------------------------------------------------------------
// File gathering.

bool analyzable_extension(const fs::path& path) {
    const std::string ext = path.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

bool skip_directory(const std::string& name) {
    return name.empty() || name.front() == '.' || name.rfind("build", 0) == 0 ||
           name == "fixtures";
}

void walk(const fs::path& root, std::vector<std::string>& files) {
    std::error_code ec;
    fs::recursive_directory_iterator it(root, ec);
    const fs::recursive_directory_iterator end;
    while (!ec && it != end) {
        if (it->is_directory(ec) && skip_directory(it->path().filename().string())) {
            it.disable_recursion_pending();
        } else if (it->is_regular_file(ec) && analyzable_extension(it->path())) {
            files.push_back(it->path().string());
        }
        it.increment(ec);
    }
}

/// Pull "file" entries out of compile_commands.json with a scan that only
/// understands the two-token `"file" : "value"` shape — enough for every
/// CMake-generated database and free of a JSON dependency.
std::vector<std::string> compdb_files(const std::string& path) {
    std::vector<std::string> out;
    std::ifstream in(path);
    if (!in) return out;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    const std::string key = "\"file\"";
    for (std::size_t at = text.find(key); at != std::string::npos;
         at = text.find(key, at + key.size())) {
        std::size_t i = at + key.size();
        while (i < text.size() && (text[i] == ' ' || text[i] == ':')) ++i;
        if (i >= text.size() || text[i] != '"') continue;
        std::string value;
        for (++i; i < text.size() && text[i] != '"'; ++i) {
            if (text[i] == '\\' && i + 1 < text.size()) ++i;
            value += text[i];
        }
        out.push_back(value);
    }
    return out;
}

std::string read_file(const std::string& path, bool& ok) {
    std::ifstream in(path, std::ios::binary);
    ok = static_cast<bool>(in);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

} // namespace

std::size_t Report::unwaived() const {
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [](const Finding& finding) { return !finding.waived; }));
}

std::string canonical_path(const std::string& path) {
    const std::vector<std::string> parts = path_components(path);
    std::size_t marker = parts.size();
    for (std::size_t i = 0; i < parts.size(); ++i)
        if (area_markers().contains(parts[i])) marker = i;
    if (marker == parts.size()) return {};
    std::string out;
    for (std::size_t i = marker; i < parts.size(); ++i)
        out += (out.empty() ? "" : "/") + parts[i];
    return out;
}

std::string render(const Finding& finding) {
    return finding.path + ":" + std::to_string(finding.line) + ": [" + finding.rule + "] " +
           finding.message;
}

Report analyze(const Options& options) {
    Report report;

    // -- gather ---------------------------------------------------------
    std::vector<std::string> files;
    std::vector<fs::path> roots;
    for (const std::string& path : options.paths) {
        std::error_code ec;
        if (fs::is_directory(path, ec)) {
            roots.push_back(fs::weakly_canonical(path, ec));
            walk(path, files);
        } else {
            files.push_back(path);
        }
    }
    if (!options.compdb.empty()) {
        for (const std::string& file : compdb_files(options.compdb)) {
            std::error_code ec;
            const std::string canon = fs::weakly_canonical(file, ec).string();
            const bool under_root =
                std::any_of(roots.begin(), roots.end(), [&](const fs::path& root) {
                    return canon.rfind(root.string() + "/", 0) == 0;
                });
            if (under_root && analyzable_extension(file)) files.push_back(file);
        }
    }
    std::set<std::string> seen;
    std::vector<std::string> unique;
    for (const std::string& file : files) {
        std::error_code ec;
        if (seen.insert(fs::weakly_canonical(file, ec).string()).second)
            unique.push_back(file);
    }
    std::sort(unique.begin(), unique.end(), [](const std::string& a, const std::string& b) {
        return canonical_path(a) < canonical_path(b) || (canonical_path(a) == canonical_path(b) && a < b);
    });

    // -- lex ------------------------------------------------------------
    std::vector<FileScan> scans;
    scans.reserve(unique.size());
    for (const std::string& file : unique) {
        bool ok = false;
        const std::string content = read_file(file, ok);
        if (!ok) {
            report.findings.push_back({file, 0, "R0", "could not read file", false, {}});
            continue;
        }
        FileScan scan;
        scan.path = file;
        scan.canonical = canonical_path(file);
        const std::vector<std::string> parts = path_components(scan.canonical);
        scan.area = parts.empty() ? "" : parts.front();
        if (scan.area == "src" && parts.size() >= 3) scan.module = parts[1];
        scan.lex = lex(content);
        scans.push_back(std::move(scan));
    }
    report.files_scanned = scans.size();

    // -- cross-file state: unordered-typed names declared in any header of
    //    a deterministic module (members iterated from sibling .cpp files).
    std::set<std::string> global_names;
    for (const FileScan& scan : scans)
        if (scan.area == "src" && deterministic_modules().contains(scan.module))
            collect_unordered_names(scan.lex.tokens, global_names);

    // -- check + resolve -------------------------------------------------
    for (FileScan& scan : scans) {
        std::vector<Finding> findings;
        check_clocks(scan, findings);
        check_entropy(scan, findings);
        check_unordered_iteration(scan, global_names, findings);
        check_layering(scan, findings);
        check_contracts(scan, findings);
        resolve_waivers(scan, findings, report);
        std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
            return a.line < b.line || (a.line == b.line && a.rule < b.rule);
        });
        report.findings.insert(report.findings.end(), findings.begin(), findings.end());
    }
    return report;
}

} // namespace rmwp::analyze
