#include "lexer.hpp"

#include <cctype>
#include <unordered_set>

namespace rmwp::analyze {
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

std::string trim(const std::string& s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

/// Parse a waiver comment starting at the character index of the 'R'.  The
/// grammar is: the marker, a parenthesized comma-separated rule list, a
/// colon, and a non-empty reason.
WaiverComment parse_waiver(const std::string& comment, std::size_t at, int line) {
    WaiverComment waiver;
    waiver.line = line;
    std::size_t i = at + std::string("RMWP_LINT_ALLOW").size();
    while (i < comment.size() && comment[i] == ' ') ++i;
    if (i >= comment.size() || comment[i] != '(') {
        waiver.malformed = true;
        return waiver;
    }
    ++i;
    std::string rule;
    bool closed = false;
    for (; i < comment.size(); ++i) {
        const char c = comment[i];
        if (c == ')') {
            closed = true;
            ++i;
            break;
        }
        if (c == ',') {
            if (!trim(rule).empty()) waiver.rules.push_back(trim(rule));
            rule.clear();
        } else {
            rule += c;
        }
    }
    if (!trim(rule).empty()) waiver.rules.push_back(trim(rule));
    if (!closed || waiver.rules.empty()) {
        waiver.malformed = true;
        return waiver;
    }
    while (i < comment.size() && comment[i] == ' ') ++i;
    if (i >= comment.size() || comment[i] != ':') {
        waiver.malformed = true;
        return waiver;
    }
    waiver.reason = trim(comment.substr(i + 1));
    if (waiver.reason.empty()) waiver.malformed = true;
    return waiver;
}

void scan_comment_for_waiver(const std::string& comment, int line, LexResult& out) {
    // Only a marker at the start of the comment (after doc-comment slashes
    // and whitespace) is a waiver; prose that merely mentions the marker —
    // like this file's own documentation — is not.
    std::size_t start = 0;
    while (start < comment.size() &&
           (comment[start] == '/' || comment[start] == '!' || comment[start] == ' ' ||
            comment[start] == '\t'))
        ++start;
    if (comment.compare(start, std::string("RMWP_LINT_ALLOW").size(), "RMWP_LINT_ALLOW") != 0)
        return;
    out.waivers.push_back(parse_waiver(comment, start, line));
}

} // namespace

LexResult lex(const std::string& content) {
    LexResult out;
    const std::size_t n = content.size();
    std::size_t i = 0;
    int line = 1;
    bool line_has_directive = false; ///< current logical line started with '#'
    bool at_line_start = true;       ///< only whitespace seen on this line so far

    auto newline = [&] {
        ++line;
        at_line_start = true;
        line_has_directive = false;
    };

    while (i < n) {
        const char c = content[i];
        if (c == '\n') {
            newline();
            ++i;
            continue;
        }
        if (c == '\\' && i + 1 < n && content[i + 1] == '\n') { // line continuation
            ++line; // logical line continues: keep directive state
            at_line_start = false;
            i += 2;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // -- comments ----------------------------------------------------
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
            const std::size_t end = content.find('\n', i);
            const std::string body =
                content.substr(i + 2, (end == std::string::npos ? n : end) - i - 2);
            scan_comment_for_waiver(body, line, out);
            i = (end == std::string::npos) ? n : end;
            continue;
        }
        if (c == '/' && i + 1 < n && content[i + 1] == '*') {
            const std::size_t end = content.find("*/", i + 2);
            const std::size_t stop = (end == std::string::npos) ? n : end;
            // Waivers are only recognized in // comments (the grammar says
            // so), but still count lines inside the block.
            for (std::size_t j = i; j < stop; ++j)
                if (content[j] == '\n') newline();
            i = (end == std::string::npos) ? n : end + 2;
            continue;
        }
        // -- preprocessor directives ------------------------------------
        if (c == '#' && at_line_start) {
            line_has_directive = true;
            at_line_start = false;
            ++i;
            continue;
        }
        // -- raw strings -------------------------------------------------
        if (c == 'R' && i + 1 < n && content[i + 1] == '"' &&
            (i == 0 || !ident_char(content[i - 1]))) {
            std::size_t j = i + 2;
            std::string delim;
            while (j < n && content[j] != '(') delim += content[j++];
            const std::string closer = ")" + delim + "\"";
            const std::size_t end = content.find(closer, j);
            const std::size_t stop = (end == std::string::npos) ? n : end + closer.size();
            const int start_line = line;
            for (std::size_t k = i; k < stop; ++k)
                if (content[k] == '\n') ++line;
            out.tokens.push_back({TokenKind::string, start_line, "R\"...\""});
            at_line_start = false;
            i = stop;
            continue;
        }
        // -- string / char literals --------------------------------------
        if (c == '"' || c == '\'') {
            const char quote = c;
            std::size_t j = i + 1;
            std::string value;
            while (j < n && content[j] != quote) {
                if (content[j] == '\\' && j + 1 < n) ++j;
                if (content[j] == '\n') ++line; // unterminated; degrade gracefully
                value += content[j++];
            }
            if (quote == '"' && line_has_directive) {
                // The only directive with a quoted string we care about.
                out.includes.push_back({line, value});
            }
            out.tokens.push_back({TokenKind::string, line, std::string(1, quote)});
            at_line_start = false;
            i = (j < n) ? j + 1 : n;
            continue;
        }
        // -- identifiers -------------------------------------------------
        if (ident_start(c)) {
            std::size_t j = i;
            while (j < n && ident_char(content[j])) ++j;
            out.tokens.push_back({TokenKind::identifier, line, content.substr(i, j - i)});
            at_line_start = false;
            i = j;
            continue;
        }
        // -- numbers (pp-number: digits, letters, dots, exponent signs) --
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(content[i + 1])))) {
            std::size_t j = i;
            while (j < n && (ident_char(content[j]) || content[j] == '.' ||
                             ((content[j] == '+' || content[j] == '-') && j > i &&
                              (content[j - 1] == 'e' || content[j - 1] == 'E' ||
                               content[j - 1] == 'p' || content[j - 1] == 'P')))) {
                ++j;
            }
            out.tokens.push_back({TokenKind::number, line, content.substr(i, j - i)});
            at_line_start = false;
            i = j;
            continue;
        }
        // -- punctuation: fuse "::" and "->" so rule checks can treat
        //    qualified names and member access as single separators.
        if (c == ':' && i + 1 < n && content[i + 1] == ':') {
            out.tokens.push_back({TokenKind::punct, line, "::"});
            at_line_start = false;
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && content[i + 1] == '>') {
            out.tokens.push_back({TokenKind::punct, line, "->"});
            at_line_start = false;
            i += 2;
            continue;
        }
        out.tokens.push_back({TokenKind::punct, line, std::string(1, c)});
        at_line_start = false;
        ++i;
    }

    // Mark waivers whose line carries no code token as own-line: they apply
    // to the next code line instead of their own.
    std::unordered_set<int> code_lines;
    for (const Token& token : out.tokens) code_lines.insert(token.line);
    for (WaiverComment& waiver : out.waivers)
        waiver.own_line = !code_lines.contains(waiver.line);
    return out;
}

} // namespace rmwp::analyze
