#include "rules.hpp"

namespace rmwp::analyze {
namespace {

/// Direct dependencies per src/ module (mirrors src/CMakeLists.txt's
/// bottom-up architecture comment and the target_link_libraries graph).
const std::map<std::string, std::set<std::string>>& direct_deps() {
    static const std::map<std::string, std::set<std::string>> deps = {
        {"util", {}},
        {"obs", {"util"}},
        {"exec", {"util"}},
        {"platform", {"util"}},
        {"milp", {"util"}},
        {"workload", {"platform", "util"}},
        {"fault", {"platform", "workload", "util"}},
        {"core", {"exec", "milp", "obs", "platform", "workload", "util"}},
        {"predict", {"core", "workload", "util"}},
        {"audit", {"core"}},
        {"metrics", {"obs", "workload", "util"}},
        {"sim", {"audit", "core", "fault", "metrics", "obs", "predict"}},
        {"serve", {"sim"}},
        {"exp", {"sim", "exec"}},
    };
    return deps;
}

std::set<std::string> close_over(const std::string& module,
                                 const std::map<std::string, std::set<std::string>>& deps) {
    std::set<std::string> seen;
    std::vector<std::string> frontier = {module};
    while (!frontier.empty()) {
        const std::string current = frontier.back();
        frontier.pop_back();
        const auto it = deps.find(current);
        if (it == deps.end()) continue;
        for (const std::string& dep : it->second)
            if (seen.insert(dep).second) frontier.push_back(dep);
    }
    return seen;
}

} // namespace

const std::set<std::string>& clock_identifiers() {
    static const std::set<std::string> ids = {
        "steady_clock",  "system_clock", "high_resolution_clock", "file_clock",
        "clock_gettime", "gettimeofday", "timespec_get",          "localtime",
        "gmtime",        "mktime",       "strftime",
    };
    return ids;
}

const std::set<std::string>& entropy_identifiers() {
    static const std::set<std::string> ids = {
        "random_device", "srand", "srand48", "drand48", "getenv", "secure_getenv",
    };
    return ids;
}

const std::set<std::string>& deterministic_modules() {
    // core/sim/exp/predict produce the bit-identity-tested results; workload
    // (seeded generation, CSV round-trips) and fault (seeded schedules) feed
    // them and are held to the same standard.
    static const std::set<std::string> modules = {"core", "sim", "exp",
                                                  "predict", "workload", "fault"};
    return modules;
}

const std::map<std::string, std::set<std::string>>& layering_closure() {
    static const std::map<std::string, std::set<std::string>> closure = [] {
        std::map<std::string, std::set<std::string>> out;
        for (const auto& [module, _] : direct_deps()) out[module] = close_over(module, direct_deps());
        return out;
    }();
    return closure;
}

bool allowlisted(const std::string& rule, const std::string& canonical) {
    const auto starts_with = [&](const char* prefix) { return canonical.rfind(prefix, 0) == 0; };
    if (rule == "R1") {
        // bench/ measures the host by definition; the serve monitor, the obs
        // trace sink, the sampled stage profiler, and the telemetry server
        // are the designated host-time scopes (DESIGN.md §14).
        return starts_with("bench/") || starts_with("src/serve/monitor.") ||
               starts_with("src/obs/trace_sink.") || starts_with("src/obs/stage_timer.") ||
               starts_with("src/obs/telemetry_server.");
    }
    if (rule == "R2") {
        // src/util/env is the one sanctioned getenv wrapper.
        return starts_with("src/util/env.");
    }
    return false;
}

} // namespace rmwp::analyze
