// rmwp-analyze: repo-aware determinism & layering checks (DESIGN.md §12).
// The entry points are pure functions over file paths so tests/test_analyze
// can drive them against fixtures without spawning the binary.
#pragma once

#include <string>
#include <vector>

namespace rmwp::analyze {

struct Finding {
    std::string path;    ///< path as given by the caller
    int line = 0;
    std::string rule;    ///< "R0".."R5"
    std::string message;
    bool waived = false;
    std::string waiver_reason; ///< set when waived
};

/// One RMWP_LINT_ALLOW comment, resolved: `used` means it suppressed at
/// least one finding.  Unused or malformed waivers become R0 findings.
struct WaiverRecord {
    std::string path;
    int line = 0;
    std::string rules;  ///< comma-joined as written
    std::string reason;
    bool used = false;
};

struct Report {
    std::vector<Finding> findings; ///< waived and unwaived, path/line order
    std::vector<WaiverRecord> waivers;
    std::size_t files_scanned = 0;

    std::size_t unwaived() const;
};

struct Options {
    /// Files and/or directories to analyze.  Directories are walked for
    /// *.cpp/*.hpp/*.h, skipping build*, hidden, and `fixtures` dirs.
    std::vector<std::string> paths;
    /// Optional compile_commands.json; its entries under `paths` are added
    /// to the file list (the glob walk still supplies headers).
    std::string compdb;
};

Report analyze(const Options& options);

/// `file:line: [R#] message` — the format tests assert on.
std::string render(const Finding& finding);

/// "src/core/edf.cpp" from any spelling of a repo path (the components
/// from the last src/bench/tests/tools/examples marker onward); empty when
/// no marker is present.  Exposed for tests.
std::string canonical_path(const std::string& path);

} // namespace rmwp::analyze
