// R3 cross-file fixture: the hashed member is declared here...
#pragma once
#include <unordered_map>

namespace rmwp {

struct FixtureLedger {
    double total() const;
    std::unordered_map<long, double> balances_;
};

} // namespace rmwp
