// R3 fixture: hashed-container iteration in a deterministic module.
#include <unordered_map>
#include <unordered_set>

namespace rmwp {

struct FixtureState {
    std::unordered_map<int, double> work;
    std::unordered_set<int> members;
};

double fixture_sum(const FixtureState& state) {
    double total = 0.0;
    for (const auto& [uid, amount] : state.work) total += amount;
    for (auto it = state.members.begin(); it != state.members.end(); ++it)
        total += static_cast<double>(*it);
    return total;
}

} // namespace rmwp
