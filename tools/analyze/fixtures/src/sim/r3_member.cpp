// ...and iterated here, in a different translation unit.
#include "r3_member.hpp"

namespace rmwp {

double FixtureLedger::total() const {
    double sum = 0.0;
    for (const auto& [key, value] : balances_) sum += value;
    return sum;
}

} // namespace rmwp
