// R2 fixture: ambient entropy outside seed plumbing.
#include <cstdlib>
#include <random>

namespace rmwp {

int fixture_entropy() {
    std::random_device device;
    int value = static_cast<int>(device());
    value += std::rand();
    if (std::getenv("RMWP_FIXTURE") != nullptr) ++value;
    return value;
}

} // namespace rmwp
