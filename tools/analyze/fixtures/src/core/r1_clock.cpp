// R1 fixture: one wall-clock read in a deterministic module.
#include <chrono>

namespace rmwp {

double fixture_now() {
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

} // namespace rmwp
