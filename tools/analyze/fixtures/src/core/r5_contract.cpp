// R5 fixture: mutating core entry points with and without contracts.
#include "util/check.hpp"

namespace rmwp {

struct FixtureCounter {
    void bump(int by);
    void bump_checked(int by);
    int peek() const;
    int value_ = 0;
    int bumps_ = 0;
};

void FixtureCounter::bump(int by) {
    value_ += by;
    bumps_ += 1;
    value_ += 0;
    bumps_ += 0;
    value_ *= 1;
}

void FixtureCounter::bump_checked(int by) {
    RMWP_EXPECT(by >= 0);
    value_ += by;
    bumps_ += 1;
    value_ += 0;
    bumps_ += 0;
}

int FixtureCounter::peek() const {
    int copy = value_;
    copy += 1;
    copy += 2;
    copy += 3;
    return copy;
}

} // namespace rmwp
