// R0 fixture: malformed and unused waivers are findings themselves.

namespace rmwp {

// RMWP_LINT_ALLOW(R1): there is no wall clock below any more
int fixture_stale() { return 1; }

// RMWP_LINT_ALLOW(R2) missing the colon and reason
int fixture_malformed() { return 2; }

} // namespace rmwp
