// Clean fixture: everything here is allowed by R1-R5.
#include "util/check.hpp"
#include <map>
#include <vector>

namespace rmwp {

struct FixtureClean {
    void absorb(const std::map<int, double>& ordered);
    std::vector<double> seen_;
};

void FixtureClean::absorb(const std::map<int, double>& ordered) {
    RMWP_EXPECT(seen_.empty() || seen_.back() >= 0.0);
    for (const auto& [key, value] : ordered) {
        seen_.push_back(value);
    }
    RMWP_ENSURE(seen_.size() >= ordered.size());
}

} // namespace rmwp
