// Waived fixture: the violations are intentional and reasoned.
#include <chrono>

namespace rmwp {

double fixture_waived_now() {
    // RMWP_LINT_ALLOW(R1): fixture exercising the own-line waiver form
    const auto t = std::chrono::steady_clock::now();
    const auto u = std::chrono::steady_clock::now(); // RMWP_LINT_ALLOW(R1): trailing waiver form
    return std::chrono::duration<double>(u - t).count();
}

} // namespace rmwp
