// R4 fixture: a core file reaching up the stack.
#include "sim/engine.hpp"
#include "serve/serve.hpp"
#include "util/check.hpp"

namespace rmwp {

int fixture_layering() { return 0; }

} // namespace rmwp
