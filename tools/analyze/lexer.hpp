// Lightweight C++ lexer for rmwp-analyze (DESIGN.md §12).  Not a real
// front-end: it produces exactly the stream the rule checks need —
// identifiers and punctuation with line numbers, quoted #include paths,
// and RMWP_LINT_ALLOW waiver comments — while discarding comment bodies,
// string/char literal contents, and preprocessor noise that would
// otherwise generate false findings.
#pragma once

#include <string>
#include <vector>

namespace rmwp::analyze {

enum class TokenKind {
    identifier, ///< [A-Za-z_][A-Za-z0-9_]*
    number,     ///< numeric literal (single token, pp-number-ish)
    string,     ///< string or char literal (contents discarded)
    punct,      ///< single punctuation char, except "::" and "->" which fuse
};

struct Token {
    TokenKind kind = TokenKind::punct;
    int line = 0;
    std::string text;
};

/// A quoted `#include "..."` directive (angle includes never name repo
/// modules, so they are not collected).
struct IncludeDirective {
    int line = 0;
    std::string path;
};

/// One `// RMWP_LINT_ALLOW(R1,R2): reason` comment.  `rules` is empty and
/// `malformed` true when the grammar was not followed (no rule list, or a
/// missing/empty reason) — the analyzer turns that into an R0 finding.
struct WaiverComment {
    int line = 0;
    std::vector<std::string> rules;
    std::string reason;
    bool malformed = false;
    bool own_line = false; ///< no code tokens share the line (set by lexer)
};

struct LexResult {
    std::vector<Token> tokens;
    std::vector<IncludeDirective> includes;
    std::vector<WaiverComment> waivers;
};

/// Tokenize `content`.  Handles //, /*...*/, string/char literals with
/// escapes, raw strings R"delim(...)delim", and line continuations well
/// enough for the rule checks; it never fails, it only degrades.
LexResult lex(const std::string& content);

} // namespace rmwp::analyze
