// rmwp_cli — command-line front end for the library.
//
//   rmwp_cli generate-catalog --out catalog.csv [--seed 42] [--types 100]
//                             [--cpus 5] [--gpus 1]
//   rmwp_cli generate-trace   --catalog catalog.csv --out trace.csv
//                             [--seed 42] [--length 500] [--group VT|LT]
//                             [--ia-mean 6] [--ia-stddev 2]
//   rmwp_cli run              --catalog catalog.csv --trace trace.csv
//                             [--cpus 5] [--gpus 1]
//                             [--rm heuristic|exact|milp|baseline]
//                             [--predictor off|oracle|noisy|online]
//                             [--type-accuracy 1.0] [--time-nrmse 0.0]
//                             [--overhead 0.0] [--lookahead 1] [--seed 42]
//                             [--exec-factor 1.0]   (actual work in
//                                                    [factor, 1] x WCET)
//                             [--activation-period 0] (0 = per arrival)
//                             [--fault-outage-rate 0]     (outages per core
//                                                          per 1000 ms)
//                             [--fault-outage-duration 40]
//                             [--fault-permanent-prob 0]  (per core)
//                             [--fault-throttle-rate 0]   (throttles per core
//                                                          per 1000 ms)
//                             [--fault-throttle-duration 60]
//                             [--fault-throttle-factor 2] (WCET multiplier)
//                             [--fault-min-online 1]
//                             [--fault-seed <seed>]       (defaults to --seed)
//                             [--reserve r:period:offset:duration[:energy][;...]]
//                                                      (design-time critical
//                                                       reservations on
//                                                       resource r; reserved
//                                                       windows preempt
//                                                       adaptive tasks)
//                             [--trace-out out.json]  (Chrome trace_event JSON;
//                                                      open in chrome://tracing
//                                                      or ui.perfetto.dev)
//                             [--events-out out.jsonl] (flat JSONL event log)
//                             [--stats 1]              (print the observability
//                                                       metrics after the run)
//
//   rmwp_cli analyze          --trace trace.csv [--catalog catalog.csv]
//
//   rmwp_cli serve            --catalog catalog.csv
//                             [--trace trace.csv|-]   (CSV file, or "-" for
//                                                      stdin; omitted = the
//                                                      endless synthetic
//                                                      generator)
//                             [--arrivals N]    (stop after N consumed; 0 =
//                                                source-driven / endless)
//                             [--duration T]    (stop at the first arrival
//                                                past T sim-ms)
//                             [--source-seed S] [--ia-mean 6] [--ia-stddev 2]
//                             [--group VT|LT]   (synthetic source knobs)
//                             [--rm ...] [--predictor off|online]
//                             [--overhead 0] [--lookahead 1] [--seed 42]
//                             [--exec-factor 1.0]
//                             [--decision-cost 0]  (sim-time per admission
//                                                   decision; the decider
//                                                   serialises requests)
//                             [--max-pending 0]    (backlog bound; arrivals
//                                                   beyond it are shed; 0 =
//                                                   unbounded)
//                             [--batch-window T]   (coalesce queued requests
//                                                   whose wakes fall within T
//                                                   sim-ms into one batched
//                                                   decision; negative = off)
//                             [--shards N]         (partition each decision
//                                                   by resource group into
//                                                   up to N solve buckets —
//                                                   bit-identical decisions
//                                                   at any N; default 1)
//                             [--probe-jobs J]     (solve up to J buckets
//                                                   concurrently on a
//                                                   persistent pool;
//                                                   default 1)
//                             [--window T]         (one stats line per T
//                                                   sim-ms window, to stderr)
//                             [--checkpoint path] [--checkpoint-every N]
//                             [--restore path]     (resume from a snapshot)
//                             [--fault-outage-rate 0] [--fault-outage-duration 40]
//                             [--fault-throttle-rate 0] [--fault-throttle-duration 60]
//                             [--fault-throttle-factor 2] [--fault-min-online 1]
//                             [--fault-seed <seed>] [--fault-chunk 10000]
//                             (permanent faults are unsupported: the horizon
//                              is unbounded)
//                             [--monitor 1] [--monitor-period 0.5]
//                             [--rss-budget-mb 0] [--active-budget 0]
//                             [--latency-budget-us 0] [--expect-no-misses auto]
//                             [--stats-json out.json] [--events-out out.jsonl]
//                             [--telemetry-port P] (HTTP GET /metrics and
//                                                   /healthz on 127.0.0.1:P;
//                                                   0 = ephemeral port,
//                                                   printed to stderr)
//                             [--trace-stream DIR] (durable JSONL event
//                                                   shards, size-rotated,
//                                                   with an index.json)
//                             Exit: 0 clean drain (incl. SIGTERM/SIGINT),
//                             3 invariant violation.
//
//   rmwp_cli experiment       [--group VT|LT] [--traces 50] [--requests 500]
//                             [--seed 42]
//                             [--rm heuristic|exact|milp|baseline|all]
//                             [--predictor off|oracle|noisy|online]
//                             [--jobs N]   (worker threads; 0 = RMWP_JOBS or
//                                           the hardware concurrency.
//                                           Results are bit-identical for
//                                           every value — see DESIGN.md §9)
//                             [--trace-dir DIR] (per-trace Chrome traces; the
//                                                file bytes are identical for
//                                                every --jobs value)
//                             [--stats 1]       (print merged observability
//                                                counters per RM)
//
// Exit status: 0 on success, 1 on usage errors, 2 on runtime failures.
#include <algorithm>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <fstream>

#include "core/baseline_rm.hpp"
#include <sstream>

#include "core/reservation.hpp"
#include "exp/parallel_runner.hpp"
#include "fault/fault.hpp"
#include "obs/export.hpp"
#include "obs/trace_sink.hpp"
#include "obs/trace_stream.hpp"
#include "core/exact_rm.hpp"
#include "core/heuristic_rm.hpp"
#include "core/milp_rm.hpp"
#include "predict/predictor.hpp"
#include "serve/serve.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/trace_generator.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace rmwp;

/// --key value argument map with typed accessors and strict checking.
class Args {
public:
    Args(int argc, char** argv, int first) {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0 || i + 1 >= argc)
                throw std::runtime_error("expected --key value pairs, got: " + key);
            values_[key.substr(2)] = argv[++i];
        }
    }

    [[nodiscard]] std::optional<std::string> get(const std::string& key) {
        const auto it = values_.find(key);
        if (it == values_.end()) return std::nullopt;
        consumed_.insert(key);
        return it->second;
    }

    [[nodiscard]] std::string require(const std::string& key) {
        if (auto value = get(key)) return *value;
        throw std::runtime_error("missing required option --" + key);
    }

    [[nodiscard]] double number(const std::string& key, double fallback) {
        if (auto value = get(key)) return std::stod(*value);
        return fallback;
    }

    [[nodiscard]] std::uint64_t integer(const std::string& key, std::uint64_t fallback) {
        if (auto value = get(key)) return std::stoull(*value);
        return fallback;
    }

    void reject_unknown() const {
        for (const auto& [key, value] : values_)
            if (!consumed_.contains(key))
                throw std::runtime_error("unknown option --" + key);
    }

private:
    std::map<std::string, std::string> values_;
    std::set<std::string> consumed_;
};

Platform make_cli_platform(Args& args) {
    const auto cpus = static_cast<std::size_t>(args.integer("cpus", 5));
    const auto gpus = static_cast<std::size_t>(args.integer("gpus", 1));
    PlatformBuilder builder;
    for (std::size_t i = 1; i <= cpus; ++i) builder.add_cpu("CPU" + std::to_string(i));
    for (std::size_t i = 1; i <= gpus; ++i)
        builder.add_gpu(gpus == 1 ? "GPU" : "GPU" + std::to_string(i));
    return builder.build();
}

int cmd_generate_catalog(Args& args) {
    const std::string out = args.require("out");
    const Platform platform = make_cli_platform(args);
    CatalogParams params;
    params.type_count = static_cast<std::size_t>(args.integer("types", 100));
    Rng rng(args.integer("seed", 42));
    args.reject_unknown();

    const Catalog catalog = generate_catalog(platform, params, rng);
    write_catalog_csv_file(out, catalog);
    std::cout << "wrote " << catalog.size() << " task types for " << platform.size()
              << " resources to " << out << '\n';
    return 0;
}

int cmd_generate_trace(Args& args) {
    const std::string catalog_path = args.require("catalog");
    const std::string out = args.require("out");
    TraceGenParams params;
    params.length = static_cast<std::size_t>(args.integer("length", 500));
    params.interarrival_mean = args.number("ia-mean", params.interarrival_mean);
    params.interarrival_stddev = args.number("ia-stddev", params.interarrival_stddev);
    if (auto group = args.get("group")) {
        if (*group == "VT") params.group = DeadlineGroup::very_tight;
        else if (*group == "LT") params.group = DeadlineGroup::less_tight;
        else throw std::runtime_error("--group must be VT or LT");
    }
    Rng rng(args.integer("seed", 42));
    args.reject_unknown();

    const Catalog catalog = read_catalog_csv_file(catalog_path);
    const Trace trace = generate_trace(catalog, params, rng);
    write_trace_csv_file(out, trace);
    std::cout << "wrote " << trace.size() << " requests (" << to_string(params.group)
              << ", mean interarrival " << format_fixed(trace.mean_interarrival(), 2) << ") to "
              << out << '\n';
    return 0;
}

/// Fail fast when observability output is requested from a build compiled
/// with -DRMWP_OBS=OFF: the simulator would record nothing and the files
/// would be silently empty.
void require_obs_build() {
#ifndef RMWP_OBS
    throw std::runtime_error(
        "this binary was built with -DRMWP_OBS=OFF; rebuild with RMWP_OBS=ON to use "
        "--trace-out/--events-out/--stats/--trace-dir");
#endif
}

void print_obs_metrics(const obs::MetricsSnapshot& snapshot) {
    Table table({"metric", "value"});
    for (const auto& counter : snapshot.counters)
        if (counter.value > 0) table.row().cell(counter.name).cell(counter.value);
    for (const auto& gauge : snapshot.gauges)
        if (gauge.value != 0.0) table.row().cell(gauge.name).cell(gauge.value, 1);
    for (const auto& histogram : snapshot.histograms) {
        if (histogram.count == 0) continue;
        table.row().cell(histogram.name).cell(
            std::to_string(histogram.count) + " samples, mean " +
            format_fixed(histogram.sum / static_cast<double>(histogram.count), 3));
    }
    table.print(std::cout);
}

/// Parse --reserve "resource:period:offset:duration[:energy]" entries
/// (semicolon-separated) into the design-time critical reservations of
/// Sec 2.  Reserved windows run with absolute priority, so they are also
/// the way to make planned preemptions visible in --trace-out artefacts.
ReservationTable parse_reservations(const std::optional<std::string>& spec,
                                    const Platform& platform) {
    if (!spec) return {};
    std::vector<CriticalTask> tasks;
    std::istringstream list(*spec);
    std::string entry;
    while (std::getline(list, entry, ';')) {
        if (entry.empty()) continue;
        std::vector<std::string> parts;
        std::istringstream fields(entry);
        std::string field;
        while (std::getline(fields, field, ':')) parts.push_back(field);
        if (parts.size() < 4 || parts.size() > 5)
            throw std::runtime_error(
                "--reserve entries must be resource:period:offset:duration[:energy], got \"" +
                entry + "\"");
        CriticalTask task;
        task.name = "critical" + std::to_string(tasks.size());
        try {
            task.resource = static_cast<ResourceId>(std::stoull(parts[0]));
            task.period = std::stod(parts[1]);
            task.offset = std::stod(parts[2]);
            task.duration = std::stod(parts[3]);
            if (parts.size() == 5) task.energy_per_instance = std::stod(parts[4]);
        } catch (const std::exception&) {
            throw std::runtime_error("--reserve entry has an unparseable field: \"" + entry +
                                     "\"");
        }
        if (task.resource >= platform.size())
            throw std::runtime_error("--reserve resource " + std::to_string(task.resource) +
                                     " does not exist (platform has " +
                                     std::to_string(platform.size()) + " resources)");
        tasks.push_back(std::move(task));
    }
    return ReservationTable(std::move(tasks));
}

int cmd_run(Args& args) {
    const std::string catalog_path = args.require("catalog");
    const std::string trace_path = args.require("trace");
    const Platform platform = make_cli_platform(args);

    const std::string rm_name = args.get("rm").value_or("heuristic");
    std::unique_ptr<ResourceManager> rm;
    if (rm_name == "heuristic") rm = std::make_unique<HeuristicRM>();
    else if (rm_name == "exact") rm = std::make_unique<ExactRM>();
    else if (rm_name == "milp") rm = std::make_unique<MilpRM>();
    else if (rm_name == "baseline") rm = std::make_unique<BaselineRM>();
    else throw std::runtime_error("--rm must be heuristic, exact, milp, or baseline");

    PredictorSpec spec;
    const std::string predictor_name = args.get("predictor").value_or("off");
    if (predictor_name == "off") spec.kind = PredictorSpec::Kind::none;
    else if (predictor_name == "oracle") spec.kind = PredictorSpec::Kind::oracle;
    else if (predictor_name == "noisy") spec.kind = PredictorSpec::Kind::noisy;
    else if (predictor_name == "online") spec.kind = PredictorSpec::Kind::online;
    else throw std::runtime_error("--predictor must be off, oracle, noisy, or online");
    spec.type_accuracy = args.number("type-accuracy", 1.0);
    spec.time_nrmse = args.number("time-nrmse", 0.0);
    spec.overhead = args.number("overhead", 0.0);
    spec.lookahead = static_cast<std::size_t>(args.integer("lookahead", 1));
    const std::uint64_t seed = args.integer("seed", 42);
    const double exec_factor = args.number("exec-factor", 1.0);
    const double activation_period = args.number("activation-period", 0.0);

    FaultParams fault;
    fault.outage_rate = args.number("fault-outage-rate", 0.0);
    fault.outage_duration_mean = args.number("fault-outage-duration", fault.outage_duration_mean);
    fault.permanent_prob = args.number("fault-permanent-prob", 0.0);
    fault.throttle_rate = args.number("fault-throttle-rate", 0.0);
    fault.throttle_duration_mean =
        args.number("fault-throttle-duration", fault.throttle_duration_mean);
    if (auto factor = args.get("fault-throttle-factor")) {
        fault.throttle_factor_min = fault.throttle_factor_max = std::stod(*factor);
    }
    fault.min_online = static_cast<std::size_t>(args.integer("fault-min-online", 1));
    const std::uint64_t fault_seed = args.integer("fault-seed", seed);

    const ReservationTable reservations = parse_reservations(args.get("reserve"), platform);
    const std::optional<std::string> trace_out = args.get("trace-out");
    const std::optional<std::string> events_out = args.get("events-out");
    const bool stats = args.integer("stats", 0) != 0;
    args.reject_unknown();

    if (fault.outage_rate < 0.0 || fault.permanent_prob < 0.0 || fault.throttle_rate < 0.0 ||
        fault.outage_duration_mean <= 0.0 || fault.throttle_duration_mean <= 0.0)
        throw std::runtime_error("fault rates must be >= 0 and durations > 0");
    if (fault.permanent_prob > 1.0)
        throw std::runtime_error("--fault-permanent-prob must be in [0, 1]");
    if (fault.throttle_factor_min < 1.0)
        throw std::runtime_error("--fault-throttle-factor must be >= 1 (it multiplies WCET)");

    const Catalog catalog = read_catalog_csv_file(catalog_path);
    if (catalog.resource_count() != platform.size())
        throw std::runtime_error("catalog resource count does not match --cpus/--gpus");
    const Trace trace = read_trace_csv_file(trace_path);
    validate_trace(trace, catalog);

    const std::unique_ptr<Predictor> predictor = make_predictor(spec, catalog, Rng(seed));
    SimOptions options;
    options.lookahead = spec.lookahead;
    options.execution_time_factor_min = exec_factor;
    options.execution_seed = seed;
    options.activation_period = activation_period;

    FaultSchedule faults;
    if (fault.any()) {
        Time horizon = 0.0;
        for (const Request& request : trace)
            horizon = std::max(horizon, request.absolute_deadline());
        Rng fault_rng(fault_seed);
        faults = generate_fault_schedule(platform, fault, horizon, fault_rng);
        options.fault_schedule = &faults;
    }

    obs::TraceSink sink;
    if (trace_out || events_out || stats) {
        require_obs_build();
        options.sink = &sink;
    }

    const TraceResult result =
        reservations.empty()
            ? simulate_trace(platform, catalog, trace, *rm, *predictor, options)
            : simulate_trace(platform, catalog, trace, *rm, *predictor, reservations, options);

    Table table({"metric", "value"});
    table.row().cell("requests").cell(result.requests);
    table.row().cell("accepted").cell(result.accepted);
    table.row().cell("rejected").cell(result.rejected);
    table.row().cell("rejection %").cell(result.rejection_percent());
    table.row().cell("aborted (overhead)").cell(result.aborted);
    table.row().cell("energy (J)").cell(result.total_energy, 1);
    table.row().cell("normalized energy").cell(result.normalized_energy(), 4);
    table.row().cell("migrations").cell(result.migrations);
    table.row().cell("migration energy (J)").cell(result.migration_energy, 1);
    table.row().cell("ms per decision").cell(
        result.activations > 0
            ? 1000.0 * result.decision_seconds / static_cast<double>(result.activations)
            : 0.0,
        4);
    if (!reservations.empty())
        table.row().cell("critical energy (J)").cell(result.critical_energy, 1);
    if (fault.any() || !faults.empty()) {
        table.row().cell("fault events injected").cell(faults.size());
        table.row().cell("resource outages").cell(result.resource_outages);
        table.row().cell("throttle events").cell(result.throttle_events);
        table.row().cell("rescue activations").cell(result.rescue_activations);
        table.row().cell("rescued tasks").cell(result.rescued);
        table.row().cell("fault-aborted tasks").cell(result.fault_aborted);
        table.row().cell("rescue migrations").cell(result.rescue_migrations);
        table.row().cell("degraded energy (J)").cell(result.degraded_energy, 1);
        table.row().cell("ms per rescue").cell(
            result.rescue_activations > 0 ? 1000.0 * result.rescue_decision_seconds /
                                                static_cast<double>(result.rescue_activations)
                                          : 0.0,
            4);
    }
    table.print(std::cout);

    if (trace_out || events_out) {
        obs::ExportOptions export_options;
        export_options.resource_names.reserve(platform.size());
        for (ResourceId i = 0; i < platform.size(); ++i)
            export_options.resource_names.push_back(platform.resource(i).name());
        const std::vector<obs::TraceEvent> events = sink.events();
        if (trace_out) {
            std::ofstream out(*trace_out);
            if (!out) throw std::runtime_error("cannot open " + *trace_out);
            obs::write_chrome_trace(out, events, export_options);
            std::cout << "wrote Chrome trace (" << events.size() << " events, "
                      << sink.dropped() << " dropped) to " << *trace_out << '\n';
        }
        if (events_out) {
            std::ofstream out(*events_out);
            if (!out) throw std::runtime_error("cannot open " + *events_out);
            obs::write_events_jsonl(out, events, export_options);
            std::cout << "wrote " << events.size() << " JSONL events to " << *events_out
                      << '\n';
        }
    }
    if (stats) print_obs_metrics(result.obs_metrics);
    return 0;
}

int cmd_serve(Args& args) {
    const std::string catalog_path = args.require("catalog");
    const Platform platform = make_cli_platform(args);

    const std::string rm_name = args.get("rm").value_or("heuristic");
    std::unique_ptr<ResourceManager> rm;
    if (rm_name == "heuristic") rm = std::make_unique<HeuristicRM>();
    else if (rm_name == "exact") rm = std::make_unique<ExactRM>();
    else if (rm_name == "milp") rm = std::make_unique<MilpRM>();
    else if (rm_name == "baseline") rm = std::make_unique<BaselineRM>();
    else throw std::runtime_error("--rm must be heuristic, exact, milp, or baseline");

    // Sharded concurrent admission (DESIGN.md §15).  Configured once, here,
    // before the RM is handed to the engine — never mid-serve.  Decisions
    // are bit-identical at any shard/probe-job count; baseline and milp
    // accept but ignore the flags.
    const std::int64_t shards_arg = args.integer("shards", 1);
    const std::int64_t probe_jobs_arg = args.integer("probe-jobs", 1);
    if (shards_arg < 1 || probe_jobs_arg < 1)
        throw std::runtime_error("--shards and --probe-jobs must be >= 1");
    ShardConfig shard;
    shard.shards = static_cast<std::size_t>(shards_arg);
    shard.probe_jobs = static_cast<std::size_t>(probe_jobs_arg);
    rm->set_shard_config(shard);

    PredictorSpec spec;
    const std::string predictor_name = args.get("predictor").value_or("off");
    if (predictor_name == "off") spec.kind = PredictorSpec::Kind::none;
    else if (predictor_name == "online") spec.kind = PredictorSpec::Kind::online;
    else
        throw std::runtime_error("serve supports --predictor off or online (oracle and noisy "
                                 "need the whole trace up front)");
    spec.overhead = args.number("overhead", 0.0);
    spec.lookahead = static_cast<std::size_t>(args.integer("lookahead", 1));
    const std::uint64_t seed = args.integer("seed", 42);

    const Catalog catalog = read_catalog_csv_file(catalog_path);
    if (catalog.resource_count() != platform.size())
        throw std::runtime_error("catalog resource count does not match --cpus/--gpus");

    // --- arrival source ---
    const std::optional<std::string> trace_path = args.get("trace");
    std::unique_ptr<ArrivalSource> source;
    std::string source_digest;
    if (trace_path) {
        if (*trace_path == "-") source = std::make_unique<CsvPipeSource>(std::cin);
        else source = std::make_unique<CsvFileSource>(*trace_path);
        source_digest = "src=trace:" + *trace_path;
    } else {
        SyntheticSourceParams sp;
        sp.seed = args.integer("source-seed", seed);
        sp.interarrival_mean = args.number("ia-mean", sp.interarrival_mean);
        sp.interarrival_stddev = args.number("ia-stddev", sp.interarrival_stddev);
        if (auto group = args.get("group")) {
            if (*group == "VT") sp.group = DeadlineGroup::very_tight;
            else if (*group == "LT") sp.group = DeadlineGroup::less_tight;
            else throw std::runtime_error("--group must be VT or LT");
        }
        source = std::make_unique<SyntheticArrivalSource>(catalog, sp);
        source_digest = "src=soak:" + std::to_string(sp.seed) + ":" +
                        std::to_string(sp.interarrival_mean) + ":" +
                        std::to_string(sp.interarrival_stddev) + ":" + to_string(sp.group);
    }

    ServeConfig config;
    config.sim.lookahead = spec.lookahead;
    config.sim.execution_time_factor_min = args.number("exec-factor", 1.0);
    config.sim.execution_seed = seed;
    config.decision_cost = args.number("decision-cost", 0.0);
    config.max_pending = static_cast<std::size_t>(args.integer("max-pending", 0));
    config.batch_window = args.number("batch-window", -1.0);
    config.max_arrivals = args.integer("arrivals", 0);
    config.max_sim_time = args.number("duration", 0.0);
    config.config_digest = source_digest;

    config.faults.outage_rate = args.number("fault-outage-rate", 0.0);
    config.faults.outage_duration_mean =
        args.number("fault-outage-duration", config.faults.outage_duration_mean);
    config.faults.throttle_rate = args.number("fault-throttle-rate", 0.0);
    config.faults.throttle_duration_mean =
        args.number("fault-throttle-duration", config.faults.throttle_duration_mean);
    if (auto factor = args.get("fault-throttle-factor")) {
        config.faults.throttle_factor_min = config.faults.throttle_factor_max =
            std::stod(*factor);
    }
    config.faults.min_online = static_cast<std::size_t>(args.integer("fault-min-online", 1));
    config.fault_seed = args.integer("fault-seed", seed);
    config.fault_chunk = args.number("fault-chunk", config.fault_chunk);
    if (config.faults.outage_rate < 0.0 || config.faults.throttle_rate < 0.0 ||
        config.faults.outage_duration_mean <= 0.0 || config.faults.throttle_duration_mean <= 0.0)
        throw std::runtime_error("fault rates must be >= 0 and durations > 0");
    if (config.faults.throttle_factor_min < 1.0)
        throw std::runtime_error("--fault-throttle-factor must be >= 1 (it multiplies WCET)");

    config.checkpoint_path = args.get("checkpoint").value_or("");
    config.checkpoint_every = args.integer("checkpoint-every", 0);
    config.restore_path = args.get("restore").value_or("");
    if (!config.checkpoint_path.empty() && config.checkpoint_every == 0)
        config.checkpoint_every = 100000;

    config.monitor = args.integer("monitor", 1) != 0;
    config.monitor_period_seconds = args.number("monitor-period", 0.5);
    config.limits.rss_budget_kb = args.integer("rss-budget-mb", 0) * 1024;
    config.limits.active_budget = args.integer("active-budget", 0);
    config.limits.latency_p99_budget_us = args.number("latency-budget-us", 0.0);
    config.limits.expect_no_misses =
        args.integer("expect-no-misses", config.faults.any() ? 0 : 1) != 0;
    config.window = args.number("window", 0.0);
    config.chaos_fake_miss_at = args.integer("chaos-fake-miss-at", 0);

    const std::optional<std::string> stats_json = args.get("stats-json");
    const std::optional<std::string> events_out = args.get("events-out");
    const std::int64_t telemetry_port = args.integer("telemetry-port", -1);
    if (telemetry_port > 65535)
        throw std::runtime_error("--telemetry-port must be in [0, 65535]");
    config.telemetry_port = static_cast<int>(telemetry_port);
    const std::optional<std::string> trace_stream = args.get("trace-stream");
    args.reject_unknown();

    obs::TraceSink sink;
    std::optional<obs::TraceStreamWriter> stream;
    // Telemetry scrapes the sink's metrics registry, so any of the three
    // observability outputs attaches the sink to the engine.
    if (events_out || trace_stream || config.telemetry_port >= 0) {
        require_obs_build();
        config.sim.sink = &sink;
        config.limits.ring_capacity = sink.capacity();
    }
    if (trace_stream) {
        stream.emplace(*trace_stream, obs::TraceStreamOptions{});
        sink.set_stream(&*stream);
    }

    const std::unique_ptr<Predictor> predictor = make_predictor(spec, catalog, Rng(seed));

    install_serve_signal_handlers();
    const ServeResult serve =
        run_serve(platform, catalog, *rm, *predictor, nullptr, *source, config);
    if (stream.has_value()) {
        sink.set_stream(nullptr);
        stream->finish();
    }
    const TraceResult& result = serve.result;

    Table table({"metric", "value"});
    table.row().cell("arrivals consumed").cell(serve.arrivals);
    table.row().cell("accepted").cell(result.accepted);
    table.row().cell("rejected").cell(result.rejected);
    table.row().cell("shed (overload)").cell(serve.shed);
    table.row().cell("completed").cell(result.completed);
    table.row().cell("deadline misses").cell(result.deadline_misses);
    table.row().cell("parse errors skipped").cell(serve.parse_errors);
    table.row().cell("energy (J)").cell(result.total_energy, 1);
    table.row().cell("normalized energy").cell(result.normalized_energy(), 4);
    table.row().cell("decisions/sec (wall)").cell(
        serve.wall_seconds > 0.0
            ? static_cast<double>(result.requests) / serve.wall_seconds
            : 0.0,
        0);
    table.row().cell("latency p50/p99 (us)").cell(
        format_fixed(serve.latency_p50_us, 0) + " / " + format_fixed(serve.latency_p99_us, 0));
    if (config.sim.sink != nullptr)
        table.row().cell("ring occupancy/dropped").cell(
            std::to_string(serve.ring_occupancy) + " / " + std::to_string(serve.ring_dropped));
    if (config.telemetry_port >= 0)
        table.row().cell("telemetry requests").cell(serve.telemetry_requests);
    if (stream.has_value())
        table.row().cell("trace shards").cell(stream->shard_count());
    if (serve.predictor_predictions > 0)
        table.row().cell("predictor hit rate").cell(
            static_cast<double>(serve.predictor_hits) /
                static_cast<double>(serve.predictor_predictions),
            4);
    table.row().cell("monitor checks").cell(serve.monitor_checks);
    table.row().cell("checkpoints written").cell(serve.checkpoints_written);
    if (serve.stopped_by_signal) table.row().cell("stopped by").cell("signal (drained)");
    table.print(std::cout);
    if (serve.exit_code != 0)
        std::cerr << "serve: invariant violation\n" << serve.violation << '\n';

    if (stats_json) {
        std::ofstream out(*stats_json);
        if (!out) throw std::runtime_error("cannot open " + *stats_json);
        out << "{\n"
            << "  \"arrivals\": " << serve.arrivals << ",\n"
            << "  \"accepted\": " << result.accepted << ",\n"
            << "  \"rejected\": " << result.rejected << ",\n"
            << "  \"shed\": " << serve.shed << ",\n"
            << "  \"completed\": " << result.completed << ",\n"
            << "  \"deadline_misses\": " << result.deadline_misses << ",\n"
            << "  \"parse_errors\": " << serve.parse_errors << ",\n"
            << "  \"total_energy\": " << result.total_energy << ",\n"
            << "  \"wall_seconds\": " << serve.wall_seconds << ",\n"
            << "  \"decisions_per_second\": "
            << (serve.wall_seconds > 0.0
                    ? static_cast<double>(result.requests) / serve.wall_seconds
                    : 0.0)
            << ",\n"
            << "  \"latency_p50_us\": " << serve.latency_p50_us << ",\n"
            << "  \"latency_p90_us\": " << serve.latency_p90_us << ",\n"
            << "  \"latency_p99_us\": " << serve.latency_p99_us << ",\n"
            << "  \"latency_p999_us\": " << serve.latency_p999_us << ",\n"
            << "  \"ring_occupancy\": " << serve.ring_occupancy << ",\n"
            << "  \"ring_dropped\": " << serve.ring_dropped << ",\n"
            << "  \"telemetry_requests\": " << serve.telemetry_requests << ",\n"
            << "  \"predictor_predictions\": " << serve.predictor_predictions << ",\n"
            << "  \"predictor_hits\": " << serve.predictor_hits << ",\n"
            << "  \"monitor_checks\": " << serve.monitor_checks << ",\n"
            << "  \"checkpoints_written\": " << serve.checkpoints_written << ",\n"
            << "  \"stopped_by_signal\": " << (serve.stopped_by_signal ? "true" : "false")
            << ",\n"
            << "  \"exit_code\": " << serve.exit_code << "\n"
            << "}\n";
        std::cout << "wrote serve stats to " << *stats_json << '\n';
    }
    if (events_out) {
        obs::ExportOptions export_options;
        export_options.resource_names.reserve(platform.size());
        for (ResourceId i = 0; i < platform.size(); ++i)
            export_options.resource_names.push_back(platform.resource(i).name());
        const std::vector<obs::TraceEvent> events = sink.events();
        std::ofstream out(*events_out);
        if (!out) throw std::runtime_error("cannot open " + *events_out);
        obs::write_events_jsonl(out, events, export_options);
        std::cout << "wrote " << events.size() << " JSONL events (" << sink.dropped()
                  << " dropped) to " << *events_out << '\n';
    }
    return serve.exit_code;
}

int cmd_experiment(Args& args) {
    DeadlineGroup group = DeadlineGroup::very_tight;
    if (auto value = args.get("group")) {
        if (*value == "VT") group = DeadlineGroup::very_tight;
        else if (*value == "LT") group = DeadlineGroup::less_tight;
        else throw std::runtime_error("--group must be VT or LT");
    }
    ExperimentConfig config = ExperimentConfig::paper(group, args.integer("seed", 42));
    config.trace_count = static_cast<std::size_t>(args.integer("traces", 50));
    config.trace.length = static_cast<std::size_t>(args.integer("requests", 500));
    const auto jobs = static_cast<std::size_t>(args.integer("jobs", 0));

    std::vector<RmKind> rms;
    const std::string rm_name = args.get("rm").value_or("heuristic");
    if (rm_name == "heuristic") rms = {RmKind::heuristic};
    else if (rm_name == "exact") rms = {RmKind::exact};
    else if (rm_name == "milp") rms = {RmKind::milp};
    else if (rm_name == "baseline") rms = {RmKind::baseline};
    else if (rm_name == "all")
        rms = {RmKind::baseline, RmKind::heuristic, RmKind::exact, RmKind::milp};
    else throw std::runtime_error("--rm must be heuristic, exact, milp, baseline, or all");

    PredictorSpec spec;
    const std::string predictor_name = args.get("predictor").value_or("off");
    if (predictor_name == "off") spec.kind = PredictorSpec::Kind::none;
    else if (predictor_name == "oracle") spec.kind = PredictorSpec::Kind::oracle;
    else if (predictor_name == "noisy") spec.kind = PredictorSpec::Kind::noisy;
    else if (predictor_name == "online") spec.kind = PredictorSpec::Kind::online;
    else throw std::runtime_error("--predictor must be off, oracle, noisy, or online");

    const std::optional<std::string> trace_dir = args.get("trace-dir");
    const bool stats = args.integer("stats", 0) != 0;
    args.reject_unknown();

    std::vector<RunSpec> specs;
    specs.reserve(rms.size());
    for (const RmKind rm : rms) specs.push_back(RunSpec{rm, spec});

    ParallelRunner runner(config, jobs);
    if (trace_dir || stats) {
        require_obs_build();
        ObsOptions obs;
        if (trace_dir) obs.trace_dir = *trace_dir;
        obs.collect_metrics = stats;
        runner.set_obs(std::move(obs));
    }
    std::cout << "experiment: " << to_string(group) << " group, " << config.trace_count
              << " traces x " << config.trace.length << " requests, seed " << config.seed
              << ", jobs " << runner.jobs() << '\n';
    const std::vector<RunOutcome> outcomes = runner.run_all(specs);

    Table table({"RM", "predictor", "rejection %", "95% CI", "normalized energy",
                 "migrations/trace", "ms/decision"});
    for (const RunOutcome& outcome : outcomes) {
        table.row()
            .cell(to_string(outcome.spec.rm))
            .cell(outcome.spec.predictor.label())
            .cell(outcome.mean_rejection_percent())
            .cell("+/- " + format_fixed(outcome.aggregate.rejection_percent.ci_halfwidth(), 2))
            .cell(outcome.mean_normalized_energy(), 4)
            .cell(outcome.aggregate.migrations.mean(), 1)
            .cell(outcome.aggregate.decision_milliseconds_per_activation.mean(), 4);
    }
    table.print(std::cout);

    if (trace_dir)
        std::cout << "per-trace Chrome traces written to " << *trace_dir << '\n';
    if (stats) {
        for (const RunOutcome& outcome : outcomes) {
            obs::MetricsSnapshot merged;
            for (const TraceResult& result : outcome.per_trace) merged.merge(result.obs_metrics);
            std::cout << "\nobservability metrics: " << outcome.spec.label() << '\n';
            print_obs_metrics(merged);
        }
    }
    return 0;
}

int cmd_analyze(Args& args) {
    const std::string trace_path = args.require("trace");
    const std::optional<std::string> catalog_path = args.get("catalog");
    args.reject_unknown();

    const Trace trace = read_trace_csv_file(trace_path);
    RMWP_EXPECT(trace.size() >= 2);

    RunningStats gaps;
    std::map<TaskTypeId, std::size_t> type_histogram;
    for (std::size_t j = 0; j < trace.size(); ++j) {
        if (j > 0)
            gaps.add(trace.request(j).arrival - trace.request(j - 1).arrival);
        ++type_histogram[trace.request(j).type];
    }

    Table table({"metric", "value"});
    table.row().cell("requests").cell(trace.size());
    table.row().cell("distinct types").cell(type_histogram.size());
    table.row().cell("span (ms)").cell(trace.horizon(), 1);
    table.row().cell("interarrival mean").cell(gaps.mean(), 3);
    table.row().cell("interarrival stddev").cell(gaps.stddev(), 3);
    table.row().cell("interarrival min/max").cell(
        format_fixed(gaps.min(), 2) + " / " + format_fixed(gaps.max(), 2));

    if (catalog_path) {
        const Catalog catalog = read_catalog_csv_file(*catalog_path);
        RunningStats tightness; // deadline / fastest WCET
        double offered_load = 0.0;
        for (const Request& request : trace) {
            const TaskType& type = catalog.type(request.type);
            tightness.add(request.relative_deadline / type.min_wcet());
            offered_load += type.min_wcet();
        }
        table.row().cell("deadline / min-WCET mean").cell(tightness.mean(), 2);
        table.row().cell("deadline / min-WCET min").cell(tightness.min(), 2);
        table.row().cell("offered load (best case)").cell(
            format_fixed(offered_load / trace.horizon(), 3) + " busy resources");
    }
    table.print(std::cout);
    return 0;
}

void usage() {
    std::cerr << "usage: rmwp_cli <generate-catalog|generate-trace|run|serve|analyze|experiment>"
                 " --key value ...\n"
                 "see the header of tools/rmwp_cli.cpp for the full option list\n";
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string command = argv[1];
    try {
        Args args(argc, argv, 2);
        if (command == "generate-catalog") return cmd_generate_catalog(args);
        if (command == "generate-trace") return cmd_generate_trace(args);
        if (command == "run") return cmd_run(args);
        if (command == "serve") return cmd_serve(args);
        if (command == "analyze") return cmd_analyze(args);
        if (command == "experiment") return cmd_experiment(args);
        usage();
        return 1;
    } catch (const std::exception& error) {
        std::cerr << "error: " << error.what() << '\n';
        return 2;
    }
}
