#!/usr/bin/env sh
# Build the full tree with AddressSanitizer + UBSan and run the test suite
# under it.  Uses a separate build directory (build-asan/) so the regular
# `build/` tree stays untouched.
#
#   tools/check.sh [extra ctest args...]
#
# Any memory error or UB report fails the run (halt_on_error).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build-asan"

cmake -B "$build_dir" -S "$repo_root" -DRMWP_SANITIZE=ON
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"

ASAN_OPTIONS=halt_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc 2>/dev/null || echo 4)" "$@"
