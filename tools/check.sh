#!/usr/bin/env sh
# Build the full tree under a sanitizer and run the test suite.
#
#   tools/check.sh [--tsan] [extra ctest args...]
#
# Default: AddressSanitizer + UBSan in build-asan/ (any memory error or UB
# report fails the run).  With --tsan: ThreadSanitizer in build-tsan/ — the
# gate for the parallel experiment engine (src/exec, exp/runner fan-out);
# any data race fails the run.  Both use separate build directories so the
# regular `build/` tree stays untouched.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

mode=asan
if [ "${1:-}" = "--tsan" ]; then
    mode=tsan
    shift
fi

if [ "$mode" = "tsan" ]; then
    build_dir="$repo_root/build-tsan"
    cmake -B "$build_dir" -S "$repo_root" -DRMWP_SANITIZE_THREAD=ON
    cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"
    # Force multi-threaded execution inside every test so TSan actually sees
    # the pool: RMWP_JOBS=4 makes parallel_for spawn workers even on a
    # single-core host.
    RMWP_JOBS=4 \
    TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
        ctest --test-dir "$build_dir" --output-on-failure \
            -j "$(nproc 2>/dev/null || echo 4)" "$@"
else
    build_dir="$repo_root/build-asan"
    cmake -B "$build_dir" -S "$repo_root" -DRMWP_SANITIZE=ON
    cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"
    ASAN_OPTIONS=halt_on_error=1:detect_leaks=1 \
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
        ctest --test-dir "$build_dir" --output-on-failure \
            -j "$(nproc 2>/dev/null || echo 4)" "$@"

    # Serve-mode smoke under the same sanitizers: synthetic arrivals with
    # faults, shedding, checkpointing, and the runtime monitor all active.
    soak_dir=$(mktemp -d)
    "$build_dir/tools/rmwp_cli" generate-catalog --out "$soak_dir/catalog.csv" --seed 42 \
        >/dev/null
    ASAN_OPTIONS=halt_on_error=1:detect_leaks=1 \
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
        "$build_dir/tools/rmwp_cli" serve --catalog "$soak_dir/catalog.csv" \
            --arrivals 20000 --rm heuristic --predictor online \
            --fault-outage-rate 0.3 --fault-throttle-rate 0.2 \
            --decision-cost 0.5 --max-pending 8 \
            --checkpoint "$soak_dir/ckpt.txt" --checkpoint-every 10000 \
            --monitor-period 0.05 --rss-budget-mb 2048 >/dev/null
    rm -rf "$soak_dir"
    echo "serve soak smoke: OK"
fi
