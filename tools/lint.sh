#!/usr/bin/env sh
# Static-analysis gate: run the curated .clang-tidy check set (warnings are
# errors) over src/ bench/ tests/ tools/.
#
#   tools/lint.sh [extra clang-tidy args...]
#
# Uses a separate build directory (build-lint/) for the compilation
# database so the regular `build/` tree stays untouched.  On machines
# without clang-tidy (e.g. a gcc-only container) it degrades to the
# strictest warning build the toolchain offers — RMWP_WERROR=ON, i.e.
# -Wall -Wextra -Wpedantic -Wconversion -Wshadow -Werror — so the gate
# still means something everywhere; CI runs the full clang-tidy job.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build-lint"
jobs=$(nproc 2>/dev/null || echo 4)

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON -DRMWP_WERROR=ON -DRMWP_AUDIT=ON

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "lint.sh: clang-tidy not found; falling back to -Werror build" >&2
    cmake --build "$build_dir" -j "$jobs"
    echo "lint.sh: strict warning build clean (clang-tidy skipped)"
    exit 0
fi

# First-party translation units only (the compilation database also covers
# nothing else, but be explicit about the tree we gate).
files=$(find "$repo_root/src" "$repo_root/bench" "$repo_root/tests" "$repo_root/tools" \
        -name '*.cpp' 2>/dev/null | sort)

if command -v run-clang-tidy >/dev/null 2>&1; then
    # shellcheck disable=SC2086  # word-splitting the file list is intended
    run-clang-tidy -p "$build_dir" -quiet -j "$jobs" "$@" $files
else
    status=0
    for file in $files; do
        clang-tidy -p "$build_dir" --quiet "$@" "$file" || status=1
    done
    exit "$status"
fi
echo "lint.sh: clang-tidy clean"
