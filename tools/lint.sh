#!/usr/bin/env sh
# Static-analysis gate, two stages sharing one source-of-truth file list
# (the exported compile_commands.json):
#
#   1. rmwp-analyze (tools/analyze, DESIGN.md §12): repo-specific
#      determinism & layering rules R1-R5 with the RMWP_LINT_ALLOW waiver
#      inventory.  Runs everywhere — it only needs the C++ toolchain.
#   2. clang-tidy with the curated .clang-tidy set (warnings are errors)
#      over every translation unit in the compilation database.  On
#      machines without clang-tidy (e.g. a gcc-only container) this stage
#      degrades to the strictest warning build the toolchain offers —
#      RMWP_WERROR=ON, i.e. -Wall -Wextra -Wpedantic -Wconversion -Wshadow
#      -Werror — so the gate still means something; CI runs the full
#      clang-tidy job.
#
#   tools/lint.sh [extra clang-tidy args...]
#
# Uses a separate build directory (build-lint/) so the regular `build/`
# tree stays untouched.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build-lint"
compdb="$build_dir/compile_commands.json"
jobs=$(nproc 2>/dev/null || echo 4)

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON -DRMWP_WERROR=ON -DRMWP_AUDIT=ON

# --- stage 1: rmwp-analyze ------------------------------------------------
cmake --build "$build_dir" -j "$jobs" --target rmwp-analyze
(cd "$repo_root" && "$build_dir/tools/analyze/rmwp-analyze" \
    --compdb "$compdb" --waivers src bench tests tools)
echo "lint.sh: rmwp-analyze clean"

# --- stage 2: clang-tidy --------------------------------------------------
if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "lint.sh: clang-tidy not found; falling back to -Werror build" >&2
    cmake --build "$build_dir" -j "$jobs"
    echo "lint.sh: strict warning build clean (clang-tidy skipped)"
    exit 0
fi

# File list straight from the compilation database — the same translation
# units the build compiles, nothing more (headers are covered through
# HeaderFilterRegex).
files=$(python3 -c "import json,sys; [print(e['file']) for e in json.load(open(sys.argv[1]))]" \
        "$compdb" 2>/dev/null | sort -u) || \
files=$(sed -n 's/^ *"file": *"\(.*\)",*$/\1/p' "$compdb" | sort -u)

if command -v run-clang-tidy >/dev/null 2>&1; then
    # shellcheck disable=SC2086  # word-splitting the file list is intended
    run-clang-tidy -p "$build_dir" -quiet -j "$jobs" "$@" $files
else
    status=0
    for file in $files; do
        clang-tidy -p "$build_dir" --quiet "$@" "$file" || status=1
    done
    exit "$status"
fi
echo "lint.sh: clang-tidy clean"
